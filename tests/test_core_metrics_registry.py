"""Tests for code metrics (static Table 1 columns) and the registry."""

import pytest

from repro.core import (
    EVALUATION_CODES,
    TABLE1_CODES,
    HeptagonLocalCode,
    PolygonCode,
    RaidMirrorCode,
    ReedSolomonCode,
    ReplicationCode,
    available_codes,
    compute_metrics,
    degraded_read_bandwidth,
    inherent_replication,
    make_code,
)


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("2-rep", ReplicationCode),
        ("3-rep", ReplicationCode),
        ("pentagon", PolygonCode),
        ("heptagon", PolygonCode),
        ("heptagon-local", HeptagonLocalCode),
        ("(10,9) RAID+m", RaidMirrorCode),
        ("(12,11) RAID+m", RaidMirrorCode),
        ("rs(14,10)", ReedSolomonCode),
    ])
    def test_fixed_names(self, name, cls):
        code = make_code(name)
        assert isinstance(code, cls)
        assert code.name == name or name in ("rs(14,10)",)

    def test_parametric_names(self):
        assert make_code("4-rep").length == 4
        assert make_code("polygon-6").length == 6
        assert make_code("(6,5) RAID+m").length == 12
        assert make_code("rs(9,6)").length == 9

    def test_bad_raidm_geometry(self):
        with pytest.raises(ValueError):
            make_code("(7,5) RAID+m")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_code("fountain")

    def test_table1_lineup(self):
        assert TABLE1_CODES == (
            "3-rep", "pentagon", "heptagon", "heptagon-local",
            "(10,9) RAID+m", "(12,11) RAID+m",
        )

    def test_evaluation_lineup(self):
        assert EVALUATION_CODES == ("3-rep", "2-rep", "pentagon", "heptagon")

    def test_available_codes_all_construct(self):
        for name in available_codes():
            make_code(name)


class TestTable1StaticColumns:
    """The paper's Table 1 storage-overhead and code-length columns."""

    EXPECTED = {
        "3-rep": (3.0, 3),
        "pentagon": (20 / 9, 5),
        "heptagon": (2.1, 7),
        "heptagon-local": (2.15, 15),
        "(10,9) RAID+m": (20 / 9, 20),
        "(12,11) RAID+m": (24 / 11, 24),
    }

    @pytest.mark.parametrize("name", TABLE1_CODES)
    def test_overhead_and_length(self, name):
        overhead, length = self.EXPECTED[name]
        metrics = compute_metrics(make_code(name))
        assert metrics.storage_overhead == pytest.approx(overhead, abs=1e-6)
        assert metrics.code_length == length

    def test_pentagon_raidm_overhead_tie(self):
        """The paper's headline: same 2.22x overhead, length 5 vs 20."""
        pentagon_metrics = compute_metrics(make_code("pentagon"))
        raidm_metrics = compute_metrics(make_code("(10,9) RAID+m"))
        assert pentagon_metrics.storage_overhead == pytest.approx(
            raidm_metrics.storage_overhead)
        assert pentagon_metrics.code_length == 5
        assert raidm_metrics.code_length == 20


class TestRepairColumns:
    def test_pentagon_metrics(self):
        metrics = compute_metrics(make_code("pentagon"))
        assert metrics.single_repair_blocks == 4
        assert metrics.double_repair_blocks == 10
        assert metrics.degraded_read_blocks == 3
        assert metrics.fault_tolerance == 2
        assert metrics.max_blocks_per_node == 4

    def test_heptagon_metrics(self):
        metrics = compute_metrics(make_code("heptagon"))
        assert metrics.single_repair_blocks == 6
        assert metrics.double_repair_blocks == 16
        assert metrics.degraded_read_blocks == 5

    def test_raidm_degraded_read_is_nine(self):
        """Section 3.1: 9 blocks for the (10,9) RAID+m on-the-fly repair."""
        assert degraded_read_bandwidth(make_code("(10,9) RAID+m")) == 9

    def test_replication_has_no_degraded_read(self):
        assert degraded_read_bandwidth(make_code("2-rep")) is None

    def test_inherent_replication(self):
        assert inherent_replication(make_code("pentagon")) == 2
        assert inherent_replication(make_code("heptagon-local")) == 2
        assert inherent_replication(make_code("3-rep")) == 3
        assert inherent_replication(make_code("rs(14,10)")) == 1

    def test_as_row_keys(self):
        row = compute_metrics(make_code("pentagon")).as_row()
        assert row["code"] == "pentagon"
        assert row["length"] == 5
