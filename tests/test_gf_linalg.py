"""Tests for GF(2^8) linear algebra (rank, solve, invert, structured matrices)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import (
    SingularMatrixError,
    cauchy,
    invert,
    matmul,
    matrix_rank,
    row_echelon,
    solve,
    vandermonde,
)


def random_matrix(rng, rows, cols):
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


class TestRowEchelon:
    def test_identity_is_fixed_point(self):
        identity = np.eye(4, dtype=np.uint8)
        reduced, pivots = row_echelon(identity)
        assert np.array_equal(reduced, identity)
        assert pivots == [0, 1, 2, 3]

    def test_zero_matrix_has_no_pivots(self):
        reduced, pivots = row_echelon(np.zeros((3, 3), dtype=np.uint8))
        assert pivots == []
        assert not reduced.any()

    def test_dependent_rows_detected(self):
        matrix = np.array([[1, 2, 3], [1, 2, 3], [0, 1, 1]], dtype=np.uint8)
        assert matrix_rank(matrix) == 2

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            row_echelon(np.zeros(3, dtype=np.uint8))


class TestRank:
    def test_vandermonde_full_rank(self):
        assert matrix_rank(vandermonde(5, 5)) == 5

    def test_rank_bounded_by_shape(self):
        rng = np.random.default_rng(3)
        matrix = random_matrix(rng, 7, 4)
        assert matrix_rank(matrix) <= 4

    def test_xor_parity_rows(self):
        # k unit rows plus the all-ones row: rank k (parity is dependent).
        k = 6
        matrix = np.vstack([np.eye(k, dtype=np.uint8), np.ones((1, k), dtype=np.uint8)])
        assert matrix_rank(matrix) == k


class TestIndependentRows:
    def test_identity_rows(self):
        from repro.gf import independent_rows
        matrix = np.eye(4, dtype=np.uint8)
        assert independent_rows(matrix) == [0, 1, 2, 3]

    def test_skips_dependent_rows(self):
        from repro.gf import independent_rows
        matrix = np.array([
            [1, 0, 0],
            [2, 0, 0],        # multiple of row 0
            [0, 1, 0],
            [1, 1, 0],        # row0 + row2
            [0, 0, 7],
        ], dtype=np.uint8)
        assert independent_rows(matrix) == [0, 2, 4]

    def test_limit_stops_early(self):
        from repro.gf import independent_rows
        matrix = np.eye(5, dtype=np.uint8)
        assert independent_rows(matrix, limit=2) == [0, 1]

    def test_zero_rows_ignored(self):
        from repro.gf import independent_rows
        matrix = np.zeros((3, 3), dtype=np.uint8)
        matrix[1] = [0, 5, 0]
        assert independent_rows(matrix) == [1]

    def test_matches_rank(self):
        from repro.gf import independent_rows
        rng = np.random.default_rng(17)
        for _ in range(20):
            matrix = rng.integers(0, 4, size=(6, 4), dtype=np.uint8)
            chosen = independent_rows(matrix)
            assert len(chosen) == matrix_rank(matrix)
            assert matrix_rank(matrix[chosen]) == len(chosen)


class TestSolve:
    def test_solve_identity(self):
        rhs = np.array([9, 8, 7], dtype=np.uint8)
        assert np.array_equal(solve(np.eye(3, dtype=np.uint8), rhs), rhs)

    def test_solve_roundtrip_random(self):
        rng = np.random.default_rng(4)
        for _ in range(20):
            matrix = random_matrix(rng, 5, 5)
            if matrix_rank(matrix) < 5:
                continue
            x = rng.integers(0, 256, 5, dtype=np.uint8)
            rhs = matmul(matrix, x[:, None])[:, 0]
            assert np.array_equal(solve(matrix, rhs), x)

    def test_solve_matrix_rhs(self):
        matrix = vandermonde(4, 4)
        unknowns = np.arange(12, dtype=np.uint8).reshape(4, 3)
        rhs = matmul(matrix, unknowns)
        assert np.array_equal(solve(matrix, rhs), unknowns)

    def test_overdetermined_consistent(self):
        matrix = np.vstack([np.eye(3, dtype=np.uint8), np.ones((1, 3), dtype=np.uint8)])
        x = np.array([1, 2, 3], dtype=np.uint8)
        rhs = matmul(matrix, x[:, None])[:, 0]
        assert np.array_equal(solve(matrix, rhs), x)

    def test_underdetermined_raises(self):
        with pytest.raises(SingularMatrixError):
            solve(np.array([[1, 1]], dtype=np.uint8), np.array([5], dtype=np.uint8))

    def test_inconsistent_raises(self):
        matrix = np.array([[1, 0], [1, 0]], dtype=np.uint8)
        with pytest.raises(SingularMatrixError):
            solve(matrix, np.array([1, 2], dtype=np.uint8))

    def test_rhs_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve(np.eye(2, dtype=np.uint8), np.array([1, 2, 3], dtype=np.uint8))


class TestInvert:
    def test_invert_vandermonde(self):
        matrix = vandermonde(4, 4)
        inverse = invert(matrix)
        assert np.array_equal(matmul(matrix, inverse), np.eye(4, dtype=np.uint8))

    def test_invert_singular_raises(self):
        with pytest.raises(SingularMatrixError):
            invert(np.ones((2, 2), dtype=np.uint8))

    def test_invert_non_square_raises(self):
        with pytest.raises(ValueError):
            invert(np.ones((2, 3), dtype=np.uint8))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_invert_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        matrix = random_matrix(rng, 4, 4)
        try:
            inverse = invert(matrix)
        except SingularMatrixError:
            assert matrix_rank(matrix) < 4
            return
        assert np.array_equal(matmul(inverse, matrix), np.eye(4, dtype=np.uint8))


class TestStructuredMatrices:
    def test_vandermonde_entries(self):
        matrix = vandermonde(3, 3, generators=[1, 2, 3])
        assert matrix[0, 0] == 1 and matrix[1, 1] == 2
        assert matrix[2, 2] == 5  # 3*3 = (x+1)^2 = x^2+1 = 5

    def test_vandermonde_rejects_duplicates(self):
        with pytest.raises(ValueError):
            vandermonde(2, 2, generators=[7, 7])

    def test_vandermonde_square_submatrices_invertible(self):
        # Vandermonde rows with powers 0..2: any 3 rows are invertible.
        matrix = vandermonde(6, 3)
        import itertools
        for rows in itertools.combinations(range(6), 3):
            assert matrix_rank(matrix[list(rows)]) == 3

    def test_cauchy_all_square_submatrices_invertible(self):
        matrix = cauchy(row_points=[10, 11, 12], col_points=[0, 1, 2, 3])
        import itertools
        for size in (1, 2, 3):
            for rows in itertools.combinations(range(3), size):
                for cols in itertools.combinations(range(4), size):
                    sub = matrix[np.ix_(rows, cols)]
                    assert matrix_rank(sub) == size

    def test_cauchy_rejects_overlap(self):
        with pytest.raises(ValueError):
            cauchy([1, 2], [2, 3])

    def test_cauchy_rejects_duplicates(self):
        with pytest.raises(ValueError):
            cauchy([1, 1], [2, 3])


class TestMatmul:
    def test_matches_manual_combination(self):
        a = np.array([[1, 2], [0, 3]], dtype=np.uint8)
        b = np.array([[5, 0], [7, 1]], dtype=np.uint8)
        out = matmul(a, b)
        from repro.gf import gf_add, gf_mul
        expected = np.array([
            [gf_add(gf_mul(1, 5), gf_mul(2, 7)), gf_mul(2, 1)],
            [gf_mul(3, 7), gf_mul(3, 1)],
        ], dtype=np.uint8)
        assert np.array_equal(out, expected)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            matmul(np.ones((2, 3), dtype=np.uint8), np.ones((2, 2), dtype=np.uint8))
