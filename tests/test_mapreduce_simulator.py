"""Tests for the discrete-event MapReduce simulator."""

import dataclasses

import numpy as np
import pytest

from repro.mapreduce import (
    MiB,
    MRSimConfig,
    MapReduceSimulator,
    run_terasort,
    run_terasort_once,
    setup1,
    setup2,
)
from repro.scheduling import Task


def tiny_config(**overrides):
    base = MRSimConfig(
        node_count=4, map_slots=2, block_bytes=64 * MiB,
        map_mean_s=10.0, map_sigma_s=0.5, heartbeat_s=1.0, delay_s=3.0,
        reduce_base_s=2.0,
    )
    return dataclasses.replace(base, **overrides)


class TestConfig:
    def test_presets_match_paper_setups(self):
        cfg1 = setup1()
        assert (cfg1.node_count, cfg1.map_slots, cfg1.reduce_slots) == (25, 2, 1)
        assert cfg1.block_bytes == 128 * MiB
        cfg2 = setup2()
        assert (cfg2.node_count, cfg2.map_slots, cfg2.reduce_slots) == (9, 4, 2)
        assert cfg2.block_bytes == 512 * MiB

    def test_validation(self):
        with pytest.raises(ValueError):
            MRSimConfig(node_count=0)
        with pytest.raises(ValueError):
            MRSimConfig(shuffle_overlap=1.5)
        with pytest.raises(ValueError):
            MRSimConfig(tasks_per_heartbeat=0)

    def test_total_map_slots(self):
        assert setup1().total_map_slots == 50


class TestSimulator:
    def test_empty_job(self):
        result = MapReduceSimulator(tiny_config()).run([], np.random.default_rng(0))
        assert result.job_time_s == 0.0
        assert result.task_count == 0

    def test_all_local_job(self):
        config = tiny_config()
        tasks = [Task(i, 0, (i % 4,)) for i in range(8)]
        result = MapReduceSimulator(config).run(tasks, np.random.default_rng(1))
        assert result.locality_percent == 100.0
        assert result.remote_tasks == 0
        assert result.map_input_traffic_bytes == 0
        # Two waves of ~10s maps plus heartbeat ramp and reduce tail.
        assert 10.0 < result.job_time_s < 30.0

    def test_forced_remote_job(self):
        # All blocks on node 0 (2 slots); 6 tasks force 4 remote runs.
        config = tiny_config()
        tasks = [Task(i, 0, (0,)) for i in range(6)]
        result = MapReduceSimulator(config).run(tasks, np.random.default_rng(2))
        assert result.remote_tasks >= 2
        assert result.map_input_traffic_bytes == result.remote_tasks * config.block_bytes

    def test_remote_tasks_slower(self):
        config = tiny_config()
        local = MapReduceSimulator(config).run(
            [Task(0, 0, (0,))], np.random.default_rng(3))
        remote_task = [Task(0, 0, (1,)), Task(1, 0, (1,)),
                       Task(2, 0, (1,))]   # node 1 has 2 slots; 1 goes remote
        remote = MapReduceSimulator(config).run(
            remote_task, np.random.default_rng(3))
        assert remote.job_time_s > local.job_time_s

    def test_seed_reproducibility(self):
        config = tiny_config()
        tasks = [Task(i, 0, (i % 4, (i + 1) % 4)) for i in range(8)]
        first = MapReduceSimulator(config).run(tasks, np.random.default_rng(7))
        second = MapReduceSimulator(config).run(tasks, np.random.default_rng(7))
        assert first == second

    def test_task_outside_cluster_rejected(self):
        config = tiny_config()
        with pytest.raises(ValueError):
            MapReduceSimulator(config).run(
                [Task(0, 0, (99,))], np.random.default_rng(0))

    def test_overload_runs_in_waves(self):
        """More tasks than slots must still complete (multiple waves)."""
        config = tiny_config()
        tasks = [Task(i, 0, (i % 4,)) for i in range(24)]   # 3 waves
        result = MapReduceSimulator(config).run(tasks, np.random.default_rng(4))
        assert result.task_count == 24
        assert result.local_tasks + result.remote_tasks == 24
        assert result.job_time_s > 30.0   # at least 3 waves of 10s

    def test_shuffle_accounting(self):
        config = tiny_config(count_shuffle_in_traffic=True)
        tasks = [Task(i, 0, (i % 4,)) for i in range(4)]
        result = MapReduceSimulator(config).run(tasks, np.random.default_rng(5))
        assert result.shuffle_traffic_bytes == 4 * config.block_bytes
        assert result.map_input_traffic_bytes >= result.shuffle_traffic_bytes

    def test_delay_improves_locality(self):
        """More patience -> no worse locality on a contended workload."""
        from repro.workloads import workload_for_load
        impatient = tiny_config(delay_s=0.0, node_count=25)
        patient = tiny_config(delay_s=30.0, node_count=25)
        totals = {"impatient": 0.0, "patient": 0.0}
        for seed in range(5):
            tasks = workload_for_load("pentagon", 100, 25, 2,
                                      np.random.default_rng(seed))
            totals["impatient"] += MapReduceSimulator(impatient).run(
                tasks, np.random.default_rng(seed + 100)).locality_percent
            totals["patient"] += MapReduceSimulator(patient).run(
                tasks, np.random.default_rng(seed + 100)).locality_percent
        assert totals["patient"] >= totals["impatient"]


class TestTerasort:
    def test_single_run(self):
        result = run_terasort_once("pentagon", 50.0, tiny_config(node_count=25),
                                   np.random.default_rng(0))
        assert result.task_count == 25
        assert 0 <= result.locality_percent <= 100

    def test_averaged_stats(self):
        stats = run_terasort("2-rep", 50.0, tiny_config(node_count=25), runs=3)
        assert stats.runs == 3
        assert stats.job_time_s > 0
        assert stats.code_name == "2-rep"
        row = stats.as_row()
        assert row["load %"] == 50.0

    def test_zero_runs_rejected(self):
        with pytest.raises(ValueError):
            run_terasort("2-rep", 50.0, tiny_config(), runs=0)

    def test_traffic_gb_property(self):
        from repro.mapreduce import JobResult
        result = JobResult(10.0, 8.0, 90.0, 9, 1, 2**30, 2**30, 10)
        assert result.traffic_gb == pytest.approx(1.0)
        assert result.total_traffic_gb == pytest.approx(2.0)
