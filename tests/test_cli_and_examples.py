"""Tests for the CLI entry point and smoke tests for every example."""

import pathlib
import runpy
import sys

import pytest

from repro.cli import build_parser, main

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig3_options(self):
        args = build_parser().parse_args(["fig3", "--mu", "4", "--trials", "7"])
        assert args.command == "fig3"
        assert args.mu == 4
        assert args.trials == 7

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_workers_validation_matches_resolve_workers(self):
        """CLI help says 0 means one per CPU; negatives are rejected at
        the parser, like resolve_workers does."""
        assert build_parser().parse_args(["fig3", "--workers", "0"]).workers == 0
        assert build_parser().parse_args(["fig3", "--workers", "4"]).workers == 4
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig3", "--workers", "-1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig3", "--workers", "many"])

    def test_worker_subcommand(self):
        args = build_parser().parse_args(
            ["worker", "127.0.0.1:7571", "--retries", "3"])
        assert args.command == "worker"
        assert args.address == "127.0.0.1:7571"
        assert args.retries == 3

    def test_address_and_heartbeat_validation(self):
        """Malformed HOST:PORT or an out-of-budget heartbeat interval
        fail at the parser, not as a traceback mid-run."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig3", "--distributed", "localhost"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "localhost"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "h:1", "--heartbeat", "45"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "h:1", "--heartbeat", "0"])
        args = build_parser().parse_args(["worker", "h:1",
                                          "--heartbeat", "0.5"])
        assert args.heartbeat == 0.5

    def test_every_sweep_subcommand_accepts_distributed(self):
        for command in ("table1", "fig3", "fig4", "fig5", "repair",
                        "families", "ablations", "all"):
            args = build_parser().parse_args(
                [command, "--distributed", "127.0.0.1:0"])
            assert args.distributed == "127.0.0.1:0"

    def test_workers_and_distributed_are_mutually_exclusive(self, capsys):
        assert main(["fig3", "--workers", "2",
                     "--distributed", "127.0.0.1:0"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "pentagon" in out
        assert "1.20e+09" in out
        assert "[ok]" in out and "FAIL" not in out

    def test_fig3_single_panel(self, capsys):
        assert main(["fig3", "--mu", "2", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "mu=2" in out
        assert "hept-DS" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "job time" in out
        assert "heptagon" in out

    def test_fig5(self, capsys):
        assert main(["fig5", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "9 nodes" in out

    def test_repair(self, capsys):
        assert main(["repair"]) == 0
        out = capsys.readouterr().out
        assert "degraded read" in out
        assert "FAIL" not in out


def run_example(name: str, argv: list[str] | None = None) -> None:
    path = EXAMPLES_DIR / f"{name}.py"
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    """Every example must run end-to-end (small trial counts)."""

    def test_quickstart(self, capsys):
        run_example("quickstart")
        assert "quickstart OK" in capsys.readouterr().out

    def test_cluster_walkthrough(self, capsys):
        run_example("cluster_walkthrough")
        out = capsys.readouterr().out
        assert "walkthrough OK" in out
        assert "cross-rack" in out

    def test_locality_study(self, capsys):
        run_example("locality_study", ["2"])
        out = capsys.readouterr().out
        assert "peeling recovers" in out

    def test_terasort_simulation(self, capsys):
        run_example("terasort_simulation", ["2"])
        out = capsys.readouterr().out
        assert "set-up 1" in out and "set-up 2" in out

    def test_reliability_study(self, capsys):
        run_example("reliability_study")
        out = capsys.readouterr().out
        assert "Monte-Carlo validation" in out
        assert "FAIL" not in out

    def test_degraded_mapreduce(self, capsys):
        run_example("degraded_mapreduce")
        out = capsys.readouterr().out
        assert "blocks fetched" in out
