"""Tests for the unrecoverable-read-error (UBER) reliability extension."""

import pytest

from repro.reliability import (
    DATA_LOSS,
    ReliabilityParams,
    add_sector_errors,
    critical_read_blocks,
    critical_states,
    group_chain,
    group_chain_with_uber,
    initial_state,
    system_mttdl_years,
    system_mttdl_years_with_uber,
    uber_failure_prob,
)

PARAMS = ReliabilityParams(node_mttf_hours=50_000, node_mttr_hours=24)


class TestUberFailureProb:
    def test_zero_error_rate(self):
        assert uber_failure_prob(0.0, 100) == 0.0

    def test_single_block(self):
        assert uber_failure_prob(0.25, 1) == pytest.approx(0.25)

    def test_multiple_blocks_compound(self):
        assert uber_failure_prob(0.5, 2) == pytest.approx(0.75)

    def test_zero_blocks(self):
        assert uber_failure_prob(0.1, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            uber_failure_prob(1.5, 1)
        with pytest.raises(ValueError):
            uber_failure_prob(0.1, -1)


class TestCriticalStates:
    def test_replication_critical_at_last_copy(self):
        chain = group_chain("3-rep", PARAMS)
        assert critical_states(chain) == {2}

    def test_polygon_critical_at_two_failures(self):
        chain = group_chain("pentagon", PARAMS)
        assert critical_states(chain) == {2}

    def test_raid_mirror_critical_when_pair_down(self):
        chain = group_chain("(4,3) RAID+m", PARAMS)
        critical = critical_states(chain)
        # Critical states have a pair fully down AND another symbol with
        # a lone copy whose partner's failure would be the second pair.
        assert all(state[1] == 1 and state[0] >= 1 for state in critical)
        assert (1, 1) in critical
        assert (0, 1) not in critical   # no half-failed pair to finish off

    def test_heptagon_local_critical_census(self):
        """A state is critical iff some single further failure is fatal,
        per the closed-form predicate."""
        chain = group_chain("heptagon-local", PARAMS)
        critical = critical_states(chain)

        def fatal(f1, f2, g):
            if max(f1, f2) >= 4:
                return True
            if g and max(f1, f2) >= 3:
                return True
            return f1 >= 3 and f2 >= 3

        for state in chain.transient_states():
            f1, f2, g = state
            next_states = [(f1 + 1, f2, g), (f1, f2 + 1, g)]
            if g == 0:
                next_states.append((f1, f2, 1))
            expected = any(fatal(*n) for n in next_states)
            assert (state in critical) == expected, state
        assert (3, 0, 0) in critical
        assert (0, 0, 0) not in critical


class TestCriticalReadBlocks:
    def test_per_code_values(self):
        assert critical_read_blocks("3-rep") == 1
        assert critical_read_blocks("2-rep") == 1
        assert critical_read_blocks("pentagon") == 10
        assert critical_read_blocks("heptagon") == 16
        assert critical_read_blocks("(10,9) RAID+m") == 9
        assert critical_read_blocks("rs(14,10)") == 10
        assert critical_read_blocks("heptagon-local") == 40

    def test_generalized_polygon_local_values(self):
        """Derived from the aggregate state structure, not blanket k.

        For 2-global-parity members the worst critical repair (one
        failure triangle) reads k - 3 surviving data blocks plus the
        group XOR and both global rows — exactly k, matching the
        pinned heptagon-local value.  Other parity counts differ from
        k, which the old hard-coded ``code.k`` silently got wrong."""
        from repro.core import make_code
        assert critical_read_blocks("pentagon-local") == 18
        assert critical_read_blocks("pentagon-local(3g,2p)") == 27
        assert critical_read_blocks("heptagon-local(3g,2p)") == 60
        three_parity = make_code("polygon-local-5(3g,3p)")
        assert critical_read_blocks("polygon-local-5(3g,3p)") == 28
        assert critical_read_blocks("polygon-local-5(3g,3p)") \
            != three_parity.k

    def test_uber_chain_for_three_group_family(self):
        """UBER chains must stay honest (and finite) beyond 2 groups."""
        clean = system_mttdl_years("pentagon-local(3g,2p)", PARAMS)
        dirty = system_mttdl_years_with_uber(
            "pentagon-local(3g,2p)", PARAMS, 1e-4)
        assert 0 < dirty < clean


class TestExtendedChains:
    def test_zero_uber_is_identity(self):
        base = group_chain("pentagon", PARAMS)
        extended = add_sector_errors(base, 0.0, 10)
        start = initial_state("pentagon")
        assert extended.mean_time_to_absorption(start) == pytest.approx(
            base.mean_time_to_absorption(start), rel=1e-12)

    def test_uber_reduces_mttdl(self):
        for code in ("3-rep", "pentagon", "(10,9) RAID+m", "heptagon-local"):
            clean = system_mttdl_years(code, PARAMS)
            dirty = system_mttdl_years_with_uber(code, PARAMS, 1e-4)
            assert dirty < clean

    def test_uber_monotone(self):
        values = [
            system_mttdl_years_with_uber("pentagon", PARAMS, u)
            for u in (0.0, 1e-6, 1e-4, 1e-2)
        ]
        assert values == sorted(values, reverse=True)

    def test_uber_mass_goes_to_data_loss(self):
        chain = group_chain_with_uber("3-rep", PARAMS, 0.5)
        split = chain.absorption_probability_split(0)
        assert split[DATA_LOSS] == pytest.approx(1.0)

    def test_uber_compresses_the_raid_advantage(self):
        """Read errors punish wide rebuilds: the RAID+m / 3-rep MTTDL
        ratio shrinks by orders of magnitude as UBER grows — the
        plausible mechanism behind the paper's Table 1 RAID+m rows."""
        def ratio(u):
            return (system_mttdl_years_with_uber("(10,9) RAID+m", PARAMS, u)
                    / system_mttdl_years_with_uber("3-rep", PARAMS, u))

        assert ratio(1e-3) < 0.35 * ratio(0.0)

    def test_transition_weight_heuristic(self):
        from repro.reliability.sector_errors import _is_repair_transition
        assert _is_repair_transition(2, 1)
        assert not _is_repair_transition(1, 2)
        assert _is_repair_transition((1, 1), (1, 0))
        assert _is_repair_transition(frozenset({1, 2}), frozenset({1}))
        with pytest.raises(TypeError):
            _is_repair_transition("a", "b")
