"""Distributed executor: a loopback coordinator driving real
``repro worker`` subprocesses must reproduce serial sweeps
bit-identically — including when a worker is killed mid-sweep or goes
silent and its units are reassigned — and must surface cell errors
with their owning (experiment, key)."""

import os
import pathlib
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.experiments import fig3, table1
from repro.experiments.distributed import (
    PROTOCOL_VERSION,
    DistributedExecutor,
    ProtocolError,
    parse_hostport,
    recv_frame,
    run_worker,
    send_frame,
)
from repro.experiments.engine import Cell, CellExecutionError, run_cells

SRC_DIR = pathlib.Path(repro.__file__).resolve().parent.parent
TESTS_DIR = pathlib.Path(__file__).resolve().parent


def plain_trial(rng, scale):
    """Top-level trial fn for protocol tests."""
    return scale * float(rng.random())


def slow_trial(rng, delay):
    """Same value stream as ``plain_trial(rng, 1.0)``, but slow enough
    that a sweep is reliably in flight when we sabotage a worker."""
    time.sleep(delay)
    return float(rng.random())


def boom_trial(rng, message):
    raise RuntimeError(message)


def spawn_worker(address, retries=30):
    """A real ``python -m repro worker`` subprocess aimed at ``address``.

    The tests directory rides along on PYTHONPATH so payload functions
    defined in this module unpickle inside the worker.
    """
    env = dict(os.environ)
    parts = [str(SRC_DIR), str(TESTS_DIR)]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         f"{address[0]}:{address[1]}", "--retries", str(retries)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def reap(procs, timeout=15):
    for proc in procs:
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


@pytest.fixture
def cluster():
    """A coordinator plus two real worker subprocesses over loopback."""
    with DistributedExecutor(heartbeat_timeout=10.0) as executor:
        procs = [spawn_worker(executor.address) for _ in range(2)]
        try:
            executor.wait_for_workers(2, timeout=60)
            yield executor, procs
        finally:
            executor.close()
            reap(procs)


def series_points(figure):
    return figure.points()


class TestWireFormat:
    def test_parse_hostport(self):
        assert parse_hostport("127.0.0.1:7571") == ("127.0.0.1", 7571)
        assert parse_hostport("node-3.cluster:0") == ("node-3.cluster", 0)
        for bad in ("7571", ":7571", "host:", "host:many", "host:70000"):
            with pytest.raises(ValueError):
                parse_hostport(bad)

    def test_frame_roundtrip(self):
        a, b = socket.socketpair()
        try:
            message = ("unit", (3, 7, (plain_trial, (1.0,), ("t", 0), 0, 4,
                                       ("t", (0,)))))
            send_frame(a, message)
            send_frame(a, ("ping", None))
            assert recv_frame(b) == message
            assert recv_frame(b) == ("ping", None)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\xff partial")
            a.close()
            with pytest.raises(ConnectionError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(ProtocolError, match="cap"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestBitIdentical:
    """The acceptance bar: coordinator + 2 worker subprocesses over
    loopback == serial workers=1, for real paper sweeps."""

    def test_fig3_panel(self, cluster):
        executor, _ = cluster
        serial = fig3.locality_panel(2, trials=4, workers=1)
        distributed = fig3.locality_panel(2, trials=4, workers=executor)
        assert series_points(serial) == series_points(distributed)

    def test_table1_monte_carlo_sharded(self, cluster):
        executor, _ = cluster
        serial = table1.monte_carlo_validation(
            codes=("3-rep",), trials=40, shard_trials=10, workers=1)
        distributed = table1.monte_carlo_validation(
            codes=("3-rep",), trials=40, shard_trials=10, workers=executor)
        assert serial == distributed

    def test_executor_is_reusable_across_sweeps(self, cluster):
        executor, _ = cluster
        cells = [Cell(experiment="t", key=(i,), fn=plain_trial, args=(2.0,),
                      trials=3) for i in range(5)]
        expected = run_cells(cells, workers=1)
        assert run_cells(cells, workers=executor) == expected
        assert run_cells(cells, workers=executor) == expected


class TestFailureRecovery:
    def test_worker_killed_mid_sweep_is_reassigned(self, cluster):
        """SIGKILL one of the two workers while units are in flight;
        the survivor absorbs the dead worker's queue and the merged
        results stay bit-identical to the serial run."""
        executor, procs = cluster
        cells = [Cell(experiment="kill", key=(i,), fn=slow_trial,
                      args=(0.3,), trials=1) for i in range(10)]
        expected = run_cells(
            [Cell(experiment="kill", key=(i,), fn=plain_trial, args=(1.0,),
                  trials=1) for i in range(10)],
            workers=1)
        box = {}
        driver = threading.Thread(
            target=lambda: box.setdefault(
                "result", run_cells(cells, workers=executor)))
        driver.start()
        time.sleep(0.8)             # both workers mid-unit by now
        procs[0].send_signal(signal.SIGKILL)
        driver.join(timeout=60)
        assert not driver.is_alive()
        assert box["result"] == expected
        assert procs[1].poll() is None      # the survivor kept serving

    def test_fig3_sweep_with_worker_killed_mid_sweep(self, cluster):
        """The acceptance bar end-to-end: a real fig3 sweep stays
        bit-identical to serial when one of the two workers dies
        partway through."""
        executor, procs = cluster
        serial = fig3.locality_panel(2, trials=20, workers=1)
        box = {}
        driver = threading.Thread(
            target=lambda: box.setdefault(
                "result", fig3.locality_panel(2, trials=20,
                                              workers=executor)))
        driver.start()
        time.sleep(0.4)
        procs[0].send_signal(signal.SIGKILL)
        driver.join(timeout=120)
        assert not driver.is_alive()
        assert series_points(box["result"]) == series_points(serial)
        assert procs[1].poll() is None

    def test_silent_worker_times_out_and_unit_is_reassigned(self):
        """A worker that claims a unit and then neither answers nor
        heartbeats is declared dead after heartbeat_timeout and its
        unit goes back on the queue."""
        with DistributedExecutor(heartbeat_timeout=1.0) as executor:
            host, port = executor.address
            saboteur = socket.create_connection((host, port))
            try:
                send_frame(saboteur, ("hello", {"version": PROTOCOL_VERSION,
                                                "pid": 0, "host": "sab"}))
                kind, _ = recv_frame(saboteur)
                assert kind == "welcome"
                cells = [Cell(experiment="hb", key=(i,), fn=plain_trial,
                              args=(1.0,), trials=2) for i in range(4)]
                expected = run_cells(cells, workers=1)
                box = {}
                driver = threading.Thread(
                    target=lambda: box.setdefault(
                        "result", run_cells(cells, workers=executor)))
                driver.start()
                kind, _ = recv_frame(saboteur)   # steal a unit, go silent
                assert kind == "unit"
                honest = threading.Thread(target=run_worker,
                                          args=(host, port), daemon=True)
                honest.start()
                driver.join(timeout=30)
                assert not driver.is_alive()
                assert box["result"] == expected
            finally:
                saboteur.close()

    def test_late_joining_worker_completes_a_waiting_sweep(self):
        with DistributedExecutor() as executor:
            cells = [Cell(experiment="late", key=(i,), fn=plain_trial,
                          args=(3.0,), trials=2) for i in range(3)]
            expected = run_cells(cells, workers=1)
            box = {}
            driver = threading.Thread(
                target=lambda: box.setdefault(
                    "result", run_cells(cells, workers=executor)))
            driver.start()
            time.sleep(0.3)          # sweep is queued, nobody to run it
            host, port = executor.address
            threading.Thread(target=run_worker, args=(host, port),
                             daemon=True).start()
            driver.join(timeout=30)
            assert not driver.is_alive()
            assert box["result"] == expected

    def test_cell_error_propagates_with_owner(self):
        """A failing cell aborts the sweep with its (experiment, key),
        and the workers survive to serve the next sweep."""
        with DistributedExecutor() as executor:
            host, port = executor.address
            threading.Thread(target=run_worker, args=(host, port),
                             daemon=True).start()
            executor.wait_for_workers(1, timeout=30)
            bad = [Cell(experiment="exp", key=("bad", 7), fn=boom_trial,
                        args=("kaput",), trials=2)]
            with pytest.raises(CellExecutionError,
                               match=r"\('bad', 7\).*'exp'.*kaput"):
                run_cells(bad, workers=executor)
            good = [Cell(experiment="exp", key=("ok",), fn=plain_trial,
                         args=(1.0,), trials=2)]
            assert run_cells(good, workers=executor) == run_cells(good,
                                                                  workers=1)

    def test_cli_distributed_subcommand_end_to_end(self, capsys):
        """`repro fig3 --distributed` drives a real worker subprocess."""
        from repro.cli import main

        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        host, port = placeholder.getsockname()
        placeholder.close()
        proc = spawn_worker((host, port), retries=60)
        try:
            assert main(["fig3", "--mu", "2", "--trials", "2",
                         "--distributed", f"{host}:{port}"]) == 0
            out = capsys.readouterr().out
            assert "[distributed]" in out
            assert "hept-DS" in out
        finally:
            reap([proc])

    def test_worker_retries_until_coordinator_appears(self):
        """`repro worker --retries` lets workers start first (the CI
        smoke job and perf snapshot rely on this)."""
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        host, port = placeholder.getsockname()
        placeholder.close()          # free the port for the coordinator
        proc = spawn_worker((host, port), retries=40)
        try:
            time.sleep(0.5)          # worker is now in its retry loop
            with DistributedExecutor(host, port) as executor:
                executor.wait_for_workers(1, timeout=60)
                cells = [Cell(experiment="retry", key=(i,), fn=plain_trial,
                              args=(1.0,), trials=2) for i in range(3)]
                assert (run_cells(cells, workers=executor)
                        == run_cells(cells, workers=1))
        finally:
            reap([proc])
