"""perf_snapshot backend guard: a BENCH JSON can never record numbers
mislabelled with a backend that silently fell back."""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

from repro.gf import kernels

_BENCH = (pathlib.Path(__file__).resolve().parents[1]
          / "benchmarks" / "perf_snapshot.py")
_spec = importlib.util.spec_from_file_location("perf_snapshot", _BENCH)
perf_snapshot = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_snapshot)


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    kernels.set_backend(None)


class TestEnsureBackendMatches:
    def test_fallback_from_concrete_request_exits_nonzero(
            self, monkeypatch, capsys):
        monkeypatch.setattr(kernels, "requested_backend", lambda: "native")
        monkeypatch.setattr(kernels, "active_backend", lambda: "numpy")
        monkeypatch.setattr(kernels, "native_error",
                            lambda: "no compiler on host")
        with pytest.raises(SystemExit) as exc:
            perf_snapshot.ensure_backend_matches()
        assert exc.value.code == 3
        err = capsys.readouterr().err
        assert "'native' requested but 'numpy' is active" in err
        assert "no compiler on host" in err

    def test_satisfied_concrete_request_passes(self, monkeypatch):
        monkeypatch.setattr(kernels, "requested_backend", lambda: "numpy")
        monkeypatch.setattr(kernels, "active_backend", lambda: "numpy")
        perf_snapshot.ensure_backend_matches()

    def test_auto_may_resolve_to_anything(self, monkeypatch):
        monkeypatch.setattr(kernels, "requested_backend", lambda: "auto")
        monkeypatch.setattr(kernels, "active_backend", lambda: "numpy")
        perf_snapshot.ensure_backend_matches()

    def test_real_resolution_is_consistent(self):
        # whatever this host resolves to, the guard lets it through
        kernels.set_backend(kernels.active_backend())
        perf_snapshot.ensure_backend_matches()
