"""Unit tests for cluster substrate components: topology, ledger,
namenode, datanode, placement policies and the plan runtime."""

import numpy as np
import pytest

from repro.cluster import (
    BlockId,
    BlockNotFoundError,
    ClusterExecutionError,
    ClusterTopology,
    DataNode,
    MiniHDFS,
    NameNode,
    NetworkLedger,
    PlacementError,
    RackAwarePlacement,
    RandomSpreadPlacement,
    RoundRobinPlacement,
    StripeInfo,
    make_placement,
)
from repro.core import make_code


class TestTopology:
    def test_flat(self):
        topology = ClusterTopology.flat(5)
        assert len(topology) == 5
        assert topology.rack_count() == 1
        assert topology.alive_nodes() == [0, 1, 2, 3, 4]

    def test_racked(self):
        topology = ClusterTopology.racked([2, 3])
        assert len(topology) == 5
        assert topology.rack_count() == 2
        assert topology.rack_members(1) == [2, 3, 4]
        assert topology.rack_of(4) == 1

    def test_fail_restore(self):
        topology = ClusterTopology.flat(3)
        topology.fail(1)
        assert topology.failed_nodes() == [1]
        assert not topology.is_alive(1)
        topology.restore(1)
        assert topology.failed_nodes() == []

    def test_cross_rack(self):
        topology = ClusterTopology.racked([2, 2])
        assert topology.cross_rack(0, 3)
        assert not topology.cross_rack(0, 1)

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            ClusterTopology.flat(2).node(9)


class TestLedger:
    def test_charge_and_totals(self):
        ledger = NetworkLedger()
        ledger.charge(0, 1, 100, "read")
        ledger.charge(1, 2, 50, "read")
        ledger.charge(0, 2, 25, "repair")
        assert ledger.total_bytes("read") == 150
        assert ledger.total_bytes("repair") == 25
        assert ledger.total_bytes() == 175
        assert ledger.transfer_count("read") == 2

    def test_same_node_transfer_is_free(self):
        ledger = NetworkLedger()
        ledger.charge(3, 3, 1000, "read")
        assert ledger.total_bytes() == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NetworkLedger().charge(0, 1, -1, "x")

    def test_cross_rack_accounting(self):
        ledger = NetworkLedger()
        ledger.charge(0, 1, 10, "repair", cross_rack=True)
        ledger.charge(0, 1, 10, "repair", cross_rack=False)
        assert ledger.cross_rack_bytes() == 10

    def test_reset(self):
        ledger = NetworkLedger()
        ledger.charge(0, 1, 10, "x")
        ledger.reset()
        assert ledger.total_bytes() == 0
        assert not ledger.records


class TestNameNode:
    def make_stripe(self, code_name="pentagon", nodes=(0, 1, 2, 3, 4)):
        return StripeInfo("f", 0, make_code(code_name), tuple(nodes))

    def test_stripe_validation(self):
        with pytest.raises(ValueError):
            StripeInfo("f", 0, make_code("pentagon"), (0, 1, 2))
        with pytest.raises(ValueError):
            StripeInfo("f", 0, make_code("pentagon"), (0, 1, 2, 3, 3))

    def test_replica_nodes(self):
        stripe = self.make_stripe(nodes=(10, 11, 12, 13, 14))
        assert stripe.replica_nodes(0) == (10, 11)   # edge (0,1)
        assert stripe.replica_nodes(9) == (13, 14)   # parity edge (3,4)

    def test_failed_slots(self):
        stripe = self.make_stripe(nodes=(10, 11, 12, 13, 14))
        assert stripe.failed_slots({11, 14, 99}) == {1, 4}

    def test_blocks_on_node(self):
        from repro.cluster import FileInfo
        namenode = NameNode()
        info = FileInfo("f", "pentagon", 9 * 64, 64)
        info.stripes.append(self.make_stripe())
        namenode.create_file(info)
        blocks = namenode.blocks_on_node(0)
        assert len(blocks) == 4   # pentagon node holds 4 blocks
        assert all(isinstance(b, BlockId) for b in blocks)
        assert namenode.blocks_on_node(9) == []

    def test_duplicate_create_rejected(self):
        from repro.cluster import FileInfo
        namenode = NameNode()
        namenode.create_file(FileInfo("f", "2-rep", 1, 1))
        with pytest.raises(FileExistsError):
            namenode.create_file(FileInfo("f", "2-rep", 1, 1))

    def test_delete(self):
        from repro.cluster import FileInfo
        namenode = NameNode()
        namenode.create_file(FileInfo("f", "2-rep", 1, 1))
        namenode.delete_file("f")
        with pytest.raises(FileNotFoundError):
            namenode.file("f")
        with pytest.raises(FileNotFoundError):
            namenode.delete_file("f")


class TestDataNode:
    def test_put_get(self):
        node = DataNode(0)
        block = BlockId("f", 0, 1)
        node.put(block, b"\x01\x02")
        assert list(node.get(block)) == [1, 2]
        assert node.has(block)
        assert node.block_count == 1
        assert node.used_bytes == 2

    def test_missing_block(self):
        with pytest.raises(BlockNotFoundError):
            DataNode(0).get(BlockId("f", 0, 0))

    def test_wipe(self):
        node = DataNode(0)
        node.put(BlockId("f", 0, 0), b"x")
        node.put(BlockId("f", 0, 1), b"y")
        assert node.wipe() == 2
        assert node.block_count == 0

    def test_drop_is_idempotent(self):
        node = DataNode(0)
        block = BlockId("f", 0, 0)
        node.put(block, b"x")
        node.drop(block)
        node.drop(block)
        assert not node.has(block)


class TestPlacementPolicies:
    def test_random_spread_distinct_alive(self):
        topology = ClusterTopology.flat(10)
        topology.fail(0)
        rng = np.random.default_rng(0)
        policy = RandomSpreadPlacement()
        for _ in range(10):
            nodes = policy.place_stripe(make_code("pentagon"), topology, rng)
            assert len(set(nodes)) == 5
            assert 0 not in nodes

    def test_random_spread_insufficient_nodes(self):
        topology = ClusterTopology.flat(4)
        with pytest.raises(PlacementError):
            RandomSpreadPlacement().place_stripe(
                make_code("pentagon"), topology, np.random.default_rng(0))

    def test_round_robin_rotates(self):
        topology = ClusterTopology.flat(10)
        policy = RoundRobinPlacement()
        rng = np.random.default_rng(0)
        first = policy.place_stripe(make_code("pentagon"), topology, rng)
        second = policy.place_stripe(make_code("pentagon"), topology, rng)
        assert first == (0, 1, 2, 3, 4)
        assert second == (5, 6, 7, 8, 9)

    def test_rack_aware_heptagon_local_domains(self):
        topology = ClusterTopology.racked([7, 7, 3])
        policy = RackAwarePlacement()
        code = make_code("heptagon-local")
        nodes = policy.place_stripe(code, topology, np.random.default_rng(1))
        racks_a = {topology.rack_of(nodes[slot]) for slot in range(7)}
        racks_b = {topology.rack_of(nodes[slot]) for slot in range(7, 14)}
        rack_g = topology.rack_of(nodes[14])
        assert len(racks_a) == 1 and len(racks_b) == 1
        assert racks_a != racks_b
        assert rack_g not in racks_a | racks_b

    def test_rack_aware_needs_three_racks(self):
        topology = ClusterTopology.racked([8, 8])
        with pytest.raises(PlacementError):
            RackAwarePlacement().place_stripe(
                make_code("heptagon-local"), topology, np.random.default_rng(0))

    def test_rack_aware_generic_fallback_spreads(self):
        topology = ClusterTopology.racked([3, 3, 3])
        nodes = RackAwarePlacement().place_stripe(
            make_code("pentagon"), topology, np.random.default_rng(2))
        racks = [topology.rack_of(n) for n in nodes]
        assert len(set(racks)) == 3   # spread across all racks

    def test_factory(self):
        assert isinstance(make_placement("random"), RandomSpreadPlacement)
        assert isinstance(make_placement("round-robin"), RoundRobinPlacement)
        assert isinstance(make_placement("rack-aware"), RackAwarePlacement)
        with pytest.raises(KeyError):
            make_placement("gravity")

    def test_rack_loss_survivability_bulk_verdicts(self):
        """One bulk query answers every rack; the heptagon-local contract
        is confinement — only the global-parity rack survives outright."""
        from repro.cluster import rack_loss_survivability, rack_slot_groups

        topology = ClusterTopology.racked([7, 7, 3])
        code = make_code("heptagon-local")
        nodes = RackAwarePlacement().place_stripe(
            code, topology, np.random.default_rng(1))
        groups = rack_slot_groups(nodes, topology)
        assert sorted(sum((list(s) for s in groups.values()), [])) == list(range(15))
        verdicts = rack_loss_survivability(code, nodes, topology)
        global_rack = topology.rack_of(nodes[14])
        for rack, ok in verdicts.items():
            assert ok == (rack == global_rack)

    def test_rack_loss_survivability_replication(self):
        """2-rep spread over three racks survives any single rack loss."""
        from repro.cluster import rack_loss_survivability

        topology = ClusterTopology.racked([1, 1, 1])
        code = make_code("2-rep")
        nodes = RackAwarePlacement().place_stripe(
            code, topology, np.random.default_rng(0))
        assert all(rack_loss_survivability(code, nodes, topology).values())

    def test_rack_aware_validation_can_be_disabled(self):
        topology = ClusterTopology.racked([7, 7, 3])
        code = make_code("heptagon-local")
        nodes = RackAwarePlacement(validate=False).place_stripe(
            code, topology, np.random.default_rng(1))
        assert len(nodes) == 15


class TestPlanRuntimeErrors:
    def test_read_from_failed_node_rejected(self):
        fs = MiniHDFS(ClusterTopology.flat(25), block_bytes=64, seed=0)
        rng = np.random.default_rng(0)
        data = bytes(rng.integers(0, 256, 64 * 9, dtype=np.uint8))
        fs.write_file("f", data, "pentagon")
        stripe = fs.namenode.file("f").stripes[0]
        plan = stripe.code.plan_degraded_read(0, set())
        # Fail the node the plan wants to read from, then execute.
        from repro.cluster import run_read_plan
        source = stripe.slot_nodes[plan.transfers[0].source_slot] \
            if plan.transfers else stripe.slot_nodes[plan.reader_slot]
        fs.topology.fail(source)
        with pytest.raises(ClusterExecutionError):
            run_read_plan(stripe, plan, fs.datanodes, fs.topology,
                          fs.ledger, None)
