"""Tests for the experiment harness: every figure/table reproduces its
paper's qualitative claims (small trial counts keep the suite fast; the
benchmarks run the full-size versions)."""

import pytest

from repro.experiments import (
    ablations,
    fig3,
    fig4,
    fig5,
    render_figure,
    render_table,
    repair_bandwidth,
    table1,
)
from repro.experiments.runner import CellStats, FigureResult, Series, trial_rng


class TestRunnerInfrastructure:
    def test_trial_rng_deterministic(self):
        assert trial_rng("a", 1).integers(1000) == trial_rng("a", 1).integers(1000)

    def test_trial_rng_varies_with_components(self):
        draws = {int(trial_rng("exp", i).integers(10**9)) for i in range(20)}
        assert len(draws) > 15

    def test_cell_stats(self):
        stats = CellStats.from_values([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.samples == 3
        with pytest.raises(ValueError):
            CellStats.from_values([])

    def test_single_sample_has_zero_spread(self):
        assert CellStats.from_values([5.0]).stdev == 0.0

    def test_series_lookup(self):
        series = Series("s")
        series.add(25.0, CellStats(90.0, 1.0, 5))
        assert series.y_at(25.0) == 90.0
        with pytest.raises(ValueError):
            series.y_at(33.0)

    def test_figure_get(self):
        figure = FigureResult("t", "x", "y", [Series("a")])
        assert figure.get("a").label == "a"
        with pytest.raises(KeyError):
            figure.get("b")


class TestReportRendering:
    def test_table_alignment(self):
        text = render_table(["code", "value"], [["pentagon", 2.22], ["x", None]])
        lines = text.splitlines()
        assert lines[0].startswith("code")
        assert "pentagon" in lines[2]
        assert "-" in lines[3] or "-" in lines[1]

    def test_scientific_formatting(self):
        text = render_table(["v"], [[1.2e9]])
        assert "1.20e+09" in text

    def test_render_figure(self):
        series = Series("pent-DS")
        series.add(25.0, CellStats(95.0, 1.0, 5))
        series.add(50.0, CellStats(88.0, 1.0, 5))
        figure = FigureResult("Fig", "load %", "locality %", [series])
        text = render_figure(figure)
        assert "pent-DS" in text
        assert "95" in text and "88" in text


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.build_table1()

    def test_row_order_matches_paper(self, result):
        assert [row.code for row in result.rows] == list(table1.PAPER_MTTDL_YEARS)

    def test_static_columns_exact(self, result):
        for row in result.rows:
            assert row.storage_overhead == pytest.approx(
                table1.PAPER_OVERHEAD[row.code], abs=0.005)

    def test_calibration_anchor(self, result):
        assert result.row("3-rep").mttdl_pattern_years == pytest.approx(
            1.20e9, rel=1e-3)

    def test_all_shape_checks_pass(self, result):
        checks = table1.shape_checks(result)
        assert all(checks.values()), checks

    def test_explicit_params_skip_calibration(self):
        from repro.reliability import ReliabilityParams
        params = ReliabilityParams(node_mttf_hours=50_000)
        result = table1.build_table1(params=params)
        assert result.params is params


class TestFig3:
    @pytest.fixture(scope="class")
    def panel(self):
        return fig3.locality_panel(2, trials=8)

    def test_series_labels(self, panel):
        assert set(panel.labels()) == {
            "2-rep-DS", "2-rep-MM", "pent-DS", "pent-MM", "hept-DS", "hept-MM",
        }

    def test_locality_ordering_at_full_load(self, panel):
        assert (panel.get("2-rep-DS").y_at(100.0)
                > panel.get("pent-DS").y_at(100.0)
                > panel.get("hept-DS").y_at(100.0))

    def test_matching_dominates_delay(self, panel):
        for code in ("2-rep", "pent", "hept"):
            for load in fig3.LOADS:
                assert (panel.get(f"{code}-MM").y_at(load)
                        >= panel.get(f"{code}-DS").y_at(load) - 1.0)

    def test_locality_decreases_with_load(self, panel):
        for label in panel.labels():
            ys = panel.get(label).ys
            assert ys[0] >= ys[-1]

    def test_more_slots_help_coded_schemes(self):
        low = fig3.locality_cell("heptagon", "delay", 100.0, 2, trials=8)
        high = fig3.locality_cell("heptagon", "delay", 100.0, 8, trials=8)
        assert high.mean > low.mean + 10

    def test_peeling_between_delay_and_matching(self):
        panel = fig3.peeling_panel(trials=8)
        for code in ("pent", "hept"):
            delay = panel.get(f"{code}-DS").y_at(100.0)
            peel = panel.get(f"{code}-peel").y_at(100.0)
            matching = panel.get(f"{code}-MM").y_at(100.0)
            assert delay - 1.0 <= peel <= matching + 1.0

    def test_full_figure_has_four_panels(self):
        panels = fig3.full_figure(trials=2)
        assert set(panels) == {"mu=2", "mu=4", "mu=8", "mu=4 peeling"}


class TestFig4:
    @pytest.fixture(scope="class")
    def panels(self):
        return fig4.figure4(runs=6)

    def test_three_panels(self, panels):
        assert set(panels) == {"job_time", "traffic", "locality"}
        for panel in panels.values():
            assert set(panel.labels()) == set(fig4.CODES)

    def test_all_shape_checks_pass(self, panels):
        checks = fig4.shape_checks(panels)
        assert all(checks.values()), checks

    def test_traffic_excess_positive_for_coded_schemes(self, panels):
        traffic = panels["traffic"]
        assert traffic.get("heptagon").y_at(100.0) > traffic.get("2-rep").y_at(100.0)


class TestFig5:
    @pytest.fixture(scope="class")
    def panels(self):
        return fig5.figure5(runs=8)

    def test_codes(self, panels):
        assert set(panels["traffic"].labels()) == {"3-rep", "2-rep", "pentagon"}

    def test_all_shape_checks_pass(self, panels):
        checks = fig5.shape_checks(panels)
        assert all(checks.values()), checks

    def test_four_slots_keep_pentagon_close_to_2rep(self, panels):
        """The paper's central conclusion, quantified."""
        locality = panels["locality"]
        gap = (locality.get("2-rep").y_at(75.0)
               - locality.get("pentagon").y_at(75.0))
        assert gap <= 6.0


class TestRepairBandwidth:
    @pytest.fixture(scope="class")
    def measurements(self):
        return repair_bandwidth.measure_all()

    def test_all_shape_checks_pass(self, measurements):
        checks = repair_bandwidth.shape_checks(measurements)
        assert all(checks.values()), checks

    def test_rs_repair_is_k_blocks(self, measurements):
        by = {m.code: m for m in measurements}
        assert by["rs(14,10)"].single_repair_blocks == 10

    def test_rows_render(self, measurements):
        text = render_table(repair_bandwidth.HEADERS,
                            [m.as_list() for m in measurements])
        assert "pentagon" in text


class TestAblations:
    def test_encoding_throughput_reports_positive_rates(self):
        stats = ablations.encoding_throughput("pentagon", block_bytes=1 << 16,
                                              repeats=1)
        assert stats["encode_mb_s"] > 0
        assert stats["decode_mb_s"] > 0

    def test_degraded_job_sweep(self):
        rows = ablations.degraded_job_sweep()
        by = {row["code"]: row for row in rows}
        assert by["pentagon"]["blocks per rebuild"] == 3
        assert by["(10,9) RAID+m"]["blocks per rebuild"] == 9
        assert (by["pentagon"]["extra traffic (GB)"]
                < by["(10,9) RAID+m"]["extra traffic (GB)"])

    def test_delay_sensitivity_monotone_tail(self):
        figure = ablations.delay_sensitivity(trials=6, skip_levels=(0, 25, 100))
        ys = figure.series[0].ys
        assert ys[-1] >= ys[0]   # more patience never hurts locality

    def test_slots_crossover_narrows_gap(self):
        figure = ablations.slots_crossover(trials=6, slot_range=(2, 8))
        gap_low = figure.get("2-rep").y_at(2) - figure.get("pentagon").y_at(2)
        gap_high = figure.get("2-rep").y_at(8) - figure.get("pentagon").y_at(8)
        assert gap_high < gap_low

    def test_heptagon_local_equivalence(self):
        """Locality similar; the global node hosts no data, so the
        heptagon-local code can only do as well or slightly better."""
        stats = ablations.heptagon_local_equivalence(trials=20)
        gap = abs(stats["heptagon"].mean - stats["heptagon-local"].mean)
        assert gap < 8.0
        assert stats["heptagon-local"].mean >= stats["heptagon"].mean - 2.0
