"""Tests for the generalized PolygonLocalCode family.

The heptagon-local code is the (n=7, groups=2, parities=2) member; the
general family is an extension of the paper's construction (its Section
2.2 cites the general locally regenerating framework [8]).
"""

import itertools

import numpy as np
import pytest

from repro.core import (
    Code,
    HeptagonLocalCode,
    PolygonLocalCode,
    SymbolKind,
    make_code,
    verify_repair_plan,
)


def encoded(code, seed=0, size=32):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(code.k)]
    return code.encode(data), data


class TestConstruction:
    def test_heptagon_local_is_the_paper_member(self):
        general = PolygonLocalCode(7, groups=2, global_parities=2)
        named = HeptagonLocalCode()
        assert general.k == named.k == 40
        assert general.length == named.length == 15
        assert general.total_blocks == named.total_blocks == 86
        assert np.array_equal(general.layout.generator_matrix(),
                              named.layout.generator_matrix())

    def test_pentagon_local_dimensions(self):
        code = make_code("pentagon-local")
        assert isinstance(code, PolygonLocalCode)
        assert code.k == 18            # 2 x 9 data blocks
        assert code.length == 11       # 2 x 5 + global node
        assert code.total_blocks == 42  # 2 x 20 + 2 globals
        assert code.storage_overhead == pytest.approx(42 / 18)

    def test_three_group_member(self):
        code = make_code("polygon-local-5(3g,2p)")
        assert code.groups == 3
        assert code.k == 27
        assert code.length == 16

    def test_registry_default_parameters(self):
        code = make_code("polygon-local-6")
        assert code.n == 6 and code.groups == 2 and code.global_parities == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PolygonLocalCode(5, groups=0)
        with pytest.raises(ValueError):
            PolygonLocalCode(5, global_parities=0)
        with pytest.raises(ValueError):
            PolygonLocalCode(24, groups=2)   # 2 x 275 data > 255 generators

    def test_symbol_census(self):
        code = make_code("pentagon-local")
        kinds = [s.kind for s in code.layout.symbols]
        assert kinds.count(SymbolKind.DATA) == 18
        assert kinds.count(SymbolKind.LOCAL_PARITY) == 2
        assert kinds.count(SymbolKind.GLOBAL_PARITY) == 2

    def test_domains_for_rack_placement(self):
        code = make_code("polygon-local-5(3g,2p)")
        domains = code.local_group_slots()
        assert set(domains) == {"A", "B", "C", "G"}
        assert domains["C"] == (10, 11, 12, 13, 14)
        assert domains["G"] == (15,)


class TestFaultTolerance:
    def test_pentagon_local_tolerates_three(self):
        assert make_code("pentagon-local").fault_tolerance == 3

    def test_exact_rank_agrees_with_generic(self):
        code = make_code("pentagon-local")
        rng = np.random.default_rng(3)
        subsets = list(itertools.combinations(range(code.length), 4))
        for index in rng.choice(len(subsets), size=60, replace=False):
            subset = subsets[index]
            assert code.can_recover(subset) == Code.can_recover(code, subset)

    def test_memoisation_is_consistent(self):
        code = make_code("pentagon-local")
        assert code.can_recover({0, 1, 2}) == code.can_recover({0, 1, 2})


class TestRepair:
    @pytest.fixture(scope="class")
    def code(self):
        return make_code("pentagon-local")

    def test_local_repairs_stay_in_group(self, code):
        plan = code.plan_node_repair([6])   # second pentagon, slot 1
        sources = {t.source_slot for t in plan.transfers}
        assert sources <= set(range(5, 10))
        assert plan.network_blocks == 4

    def test_double_repair_uses_partial_parities(self, code):
        plan = code.plan_node_repair([0, 1])
        assert plan.network_blocks == 10    # the pentagon Section 2.1 count

    def test_repairs_restore_bytes(self, code):
        blocks, _ = encoded(code, seed=5)
        patterns = [
            [0], [7], [code.global_slot],
            [0, 1], [5, 6], [0, 5],
            [0, 1, 5], [0, 1, code.global_slot],
            [0, 1, 2],                       # triangle -> global equations
            [5, 6, 7],
        ]
        for failed in patterns:
            plan = code.plan_node_repair(failed)
            assert verify_repair_plan(code, blocks, plan), failed

    def test_global_rebuild_partial_aggregation(self, code):
        plan = code.plan_node_repair([code.global_slot])
        # Pentagon data-edge primaries live on slots 0..2 of each group
        # (slot 3's only lower-endpoint edge is the parity edge (3,4)):
        # 3 slots x 2 groups x 2 parities = 12 partial blocks, not 18 reads.
        assert plan.network_blocks == 12
        assert all(t.kind.value == "partial" for t in plan.transfers)

    def test_degraded_read_resolves_locally(self, code):
        blocks, _ = encoded(code, seed=6)
        from repro.core import execute_read_plan
        plan = code.plan_degraded_read(0, failed_slots={0, 1})
        assert plan.network_blocks == 3     # pentagon partial parities
        assert {t.source_slot for t in plan.transfers} <= set(range(5))
        value = execute_read_plan(code, blocks, plan, {0, 1})
        assert np.array_equal(value, blocks[0])


class TestClusterIntegration:
    def test_pentagon_local_roundtrip_with_failures(self):
        from repro.cluster import ClusterTopology, MiniHDFS, RackAwarePlacement
        fs = MiniHDFS(ClusterTopology.racked([5, 5, 2]), block_bytes=64,
                      placement=RackAwarePlacement(), seed=4)
        rng = np.random.default_rng(9)
        data = bytes(rng.integers(0, 256, 64 * 18, dtype=np.uint8))
        fs.write_file("f", data, "pentagon-local")
        stripe = fs.namenode.file("f").stripes[0]
        for slot in (0, 1, 2):   # a triangle of group A
            fs.fail_node(stripe.slot_nodes[slot], permanent=True)
        fs.repair_all()
        assert fs.read_file("f") == data
