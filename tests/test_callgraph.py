"""The interprocedural core: symbol resolution across modules and
re-exports, method lookup through bases, transitive lock/raise
closures, and payload-key propagation through forwarded dicts."""

from __future__ import annotations

import textwrap

from repro.analysis.core import Project
from repro.analysis.callgraph import (CallGraph, get_callgraph,
                                      lock_token, module_name,
                                      qualify_token)


def build(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    project = Project(tmp_path, [tmp_path], context_paths=())
    return CallGraph(project)


class TestNaming:
    def test_module_name_strips_src_prefix(self):
        assert module_name("src/repro/net.py") == "repro.net"
        assert module_name("repro/core/__init__.py") == "repro.core"
        assert module_name("benchmarks/run.py") == "benchmarks.run"

    def test_qualify_token(self):
        assert qualify_token("self._meta", "NameNode") == "NameNode._meta"
        assert qualify_token("self._meta", None) == "self._meta"
        assert qualify_token("GLOBAL_LOCK", "NameNode") == "GLOBAL_LOCK"


class TestResolution:
    def test_direct_module_import(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/util.py": """\
                def helper():
                    return 1
            """,
            "pkg/main.py": """\
                from pkg import util

                def run():
                    return util.helper()
            """,
        })
        fn = graph.functions["pkg.main.run"]
        (call,) = fn.calls
        assert call.callee == "pkg.util.helper"

    def test_relative_import_from_package_init(self, tmp_path):
        # `from .util import helper` inside pkg/__init__.py must
        # resolve against pkg itself, not pkg's parent.
        graph = build(tmp_path, {
            "pkg/__init__.py": """\
                from .util import helper
            """,
            "pkg/util.py": """\
                def helper():
                    return 1
            """,
            "pkg/main.py": """\
                import pkg

                def run():
                    return pkg.helper()
            """,
        })
        (call,) = graph.functions["pkg.main.run"].calls
        assert call.callee == "pkg.util.helper"

    def test_reexport_chase(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/__init__.py": "from .middle import helper\n",
            "pkg/middle.py": "from .impl import helper\n",
            "pkg/impl.py": """\
                def helper():
                    return 1
            """,
            "pkg/main.py": """\
                from pkg import helper

                def run():
                    return helper()
            """,
        })
        (call,) = graph.functions["pkg.main.run"].calls
        assert call.callee == "pkg.impl.helper"

    def test_method_through_base_class(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/base.py": """\
                class Base:
                    def shared(self):
                        return 1
            """,
            "pkg/sub.py": """\
                from .base import Base

                class Sub(Base):
                    def run(self):
                        return self.shared()
            """,
        })
        (call,) = graph.functions["pkg.sub.Sub.run"].calls
        assert call.callee == "pkg.base.Base.shared"


class TestClosures:
    LOCKED = {
        "pkg/__init__.py": "",
        "pkg/daemon.py": """\
            import threading

            class Daemon:
                def __init__(self):
                    self._meta = threading.Lock()
                    self._io_lock = threading.Lock()

                def outer(self):
                    with self._meta:
                        return self.inner()

                def inner(self):
                    with self._io_lock:
                        return 1
        """,
    }

    def test_transitive_locks(self, tmp_path):
        graph = build(tmp_path, self.LOCKED)
        closure = graph.transitive_locks()
        assert closure["pkg.daemon.Daemon.outer"] == frozenset(
            {"Daemon._meta", "Daemon._io_lock"})
        assert closure["pkg.daemon.Daemon.inner"] == frozenset(
            {"Daemon._io_lock"})

    def test_acquire_chain(self, tmp_path):
        graph = build(tmp_path, self.LOCKED)
        chain = graph.acquire_chain("pkg.daemon.Daemon.outer",
                                    "Daemon._io_lock")
        assert chain == ["pkg.daemon.Daemon.outer",
                         "pkg.daemon.Daemon.inner"]

    def test_transitive_raises_and_catch_filter(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/err.py": """\
                class AppError(Exception):
                    pass
            """,
            "pkg/work.py": """\
                from .err import AppError

                def deep():
                    raise AppError("boom")

                def propagates():
                    return deep()

                def catches():
                    try:
                        return deep()
                    except AppError:
                        return None
            """,
        })
        raises = graph.transitive_raises()
        types = {t for t, _, _ in raises["pkg.work.propagates"]}
        assert "pkg.err.AppError" in types
        # the try/except around the call filters the propagated raise
        caught_sites = graph.functions["pkg.work.catches"].calls
        assert any("AppError" in c.caught for c in caught_sites)

    def test_lock_token_shapes(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/locks.py": """\
                import threading

                GLOBAL_LOCK = threading.Lock()

                class D:
                    def with_global(self):
                        with GLOBAL_LOCK:
                            return 1

                    def with_call(self, key):
                        with self._stripe_lock(key):
                            return 2
            """,
        })
        fns = graph.functions
        assert [a.token for a in
                fns["pkg.locks.D.with_global"].acquisitions] == ["GLOBAL_LOCK"]
        assert [a.token for a in
                fns["pkg.locks.D.with_call"].acquisitions] == [
                    "D._stripe_lock()"]


class TestPayloadKeys:
    def test_forwarded_payload_merges_reads(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/ops.py": """\
                def handle(data):
                    name = data["name"]
                    return detail(data)

                def detail(payload):
                    return payload.get("verbose")
            """,
        })
        keys = graph.payload_keys("pkg.ops.handle", "data")
        assert keys["name"][0] is True           # required
        assert keys["verbose"][0] is False       # optional, via detail()

    def test_recursive_forwarding_terminates(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/loop.py": """\
                def a(data):
                    data["x"]
                    return b(data)

                def b(data):
                    data["y"]
                    return a(data)
            """,
        })
        keys = graph.payload_keys("pkg.loop.a", "data")
        assert set(keys) == {"x", "y"}


class TestCaching:
    def test_get_callgraph_memoizes_on_project(self, tmp_path):
        for rel, src in TestClosures.LOCKED.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(src))
        project = Project(tmp_path, [tmp_path], context_paths=())
        assert get_callgraph(project) is get_callgraph(project)
