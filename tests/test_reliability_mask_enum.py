"""Sharded exact-reliability enumeration: bit-identity across executors,
the constant-memory range seam, and the lifted (and clearly named)
length wall."""

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.core import make_code
from repro.experiments.distributed import DistributedExecutor
from repro.experiments.engine import PooledExecutor
from repro.reliability import (
    AUTO_SERIAL_MASKS,
    MAX_EXACT_LENGTH,
    ReliabilityParams,
    brute_force_chain,
    mask_shard_bits,
    recoverable_mask_table,
    shard_ranges,
)

SRC_DIR = pathlib.Path(repro.__file__).resolve().parent.parent

FAST = ReliabilityParams(node_mttf_hours=100.0, node_mttr_hours=10.0)


def spawn_worker(address, retries=30):
    """A real ``python -m repro worker`` subprocess aimed at ``address``."""
    env = dict(os.environ)
    parts = [str(SRC_DIR)]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         f"{address[0]}:{address[1]}", "--retries", str(retries)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


class TestMaskRangeVerdicts:
    """The constant-memory range seam under the sharded engine."""

    @pytest.mark.parametrize("name", [
        "pentagon", "heptagon-local", "pentagon-local", "rs(6,4)",
        "(4,3) RAID+m", "3-rep", "polygon-local-4(3g,2p)",
    ])
    def test_matches_bulk_engine(self, name):
        code = make_code(name)
        total = 1 << code.length
        expected = make_code(name).can_recover_masks(np.arange(total))
        got = code.mask_range_verdicts(0, total)
        assert (got == expected).all()

    def test_arbitrary_subrange(self):
        code = make_code("pentagon-local")
        full = code.mask_range_verdicts(0, 1 << code.length)
        assert (code.mask_range_verdicts(100, 900) == full[100:900]).all()
        assert (code.mask_range_verdicts(0, 1 << code.length,
                                         chunk_masks=13) == full).all()

    def test_does_not_populate_per_mask_memo(self):
        """An exhaustive range sweep must not pin 2**L dict entries."""
        code = make_code("pentagon-local")
        before = len(code._recover_cache)
        code.mask_range_verdicts(0, 1 << code.length)
        assert len(code._recover_cache) == before

    def test_range_validation(self):
        code = make_code("pentagon")
        with pytest.raises(ValueError, match="pentagon"):
            code.mask_range_verdicts(-1, 4)
        with pytest.raises(ValueError):
            code.mask_range_verdicts(0, (1 << code.length) + 1)
        with pytest.raises(ValueError):
            code.mask_range_verdicts(0, 8, chunk_masks=0)

    def test_empty_range(self):
        assert len(make_code("pentagon").mask_range_verdicts(3, 3)) == 0


class TestShardPlanning:
    def test_ranges_cover_exactly(self):
        for length in (1, 7, 15, 16, 22):
            shards = shard_ranges(length)
            assert shards[0][0] == 0
            assert shards[-1][1] == 1 << length
            for (_, hi), (lo, _) in zip(shards, shards[1:]):
                assert hi == lo

    def test_boundaries_depend_only_on_length(self):
        assert shard_ranges(16) == shard_ranges(16)
        assert len(shard_ranges(16, shard_masks=1 << 12)) == 16

    def test_shard_fn_is_packed_and_mergeable(self):
        code = make_code("heptagon-local")
        total = 1 << code.length
        payload = mask_shard_bits("heptagon-local", 0, total)
        assert isinstance(payload, bytes)
        assert len(payload) == total // 8
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        assert (bits.astype(bool)
                == code.mask_range_verdicts(0, total)).all()


class TestExecutorBitIdentity:
    """workers=1, workers=N and distributed loopback must agree exactly."""

    def test_serial_vs_pooled(self):
        # serial_below=0: heptagon-local's 2**15 masks sit under the
        # auto-serial floor, and this test exists to exercise the pool.
        serial = recoverable_mask_table(make_code("heptagon-local"))
        pooled = recoverable_mask_table(make_code("heptagon-local"),
                                        workers=2, serial_below=0)
        explicit = recoverable_mask_table(make_code("heptagon-local"),
                                          executor=PooledExecutor(2))
        assert (serial == pooled).all()
        assert (serial == explicit).all()

    def test_serial_vs_pooled_rank_based_family(self):
        """A generic (no closed form) family: rank tests in workers."""
        serial = recoverable_mask_table(make_code("pentagon-local"))
        pooled = recoverable_mask_table(make_code("pentagon-local"),
                                        workers=2, shard_masks=256,
                                        serial_below=0)
        assert (serial == pooled).all()

    def test_distributed_loopback(self):
        serial = recoverable_mask_table(make_code("heptagon-local"))
        with DistributedExecutor(heartbeat_timeout=30.0) as executor:
            proc = spawn_worker(executor.address)
            try:
                executor.wait_for_workers(1, timeout=60)
                distributed = recoverable_mask_table(
                    make_code("heptagon-local"), executor=executor)
            finally:
                executor.close()
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        assert (serial == distributed).all()

    def test_sharded_brute_force_chain_matches_serial(self):
        # An explicit executor: a bare workers=2 would auto-serialise
        # at pentagon-local's 2**11 masks.
        code_serial = make_code("pentagon-local")
        code_pooled = make_code("pentagon-local")
        serial = brute_force_chain(code_serial, FAST)
        pooled = brute_force_chain(code_pooled, FAST,
                                   executor=PooledExecutor(2))
        assert set(serial.transitions) == set(pooled.transitions)
        for state in serial.transitions:
            assert sorted(serial.transitions[state], key=repr) \
                == sorted(pooled.transitions[state], key=repr)


class TestAutoSerial:
    """Small enumerations must not pay pool spin-up for worker counts."""

    def test_small_worker_count_request_stays_serial(self, monkeypatch):
        import repro.experiments.engine as engine

        def forbidden(*args, **kwargs):
            raise AssertionError(
                "run_cells must not be reached below AUTO_SERIAL_MASKS")

        monkeypatch.setattr(engine, "run_cells", forbidden)
        code = make_code("heptagon-local")       # 2**15 masks
        assert (1 << code.length) < AUTO_SERIAL_MASKS
        table = recoverable_mask_table(code, workers=2)
        expected = make_code("heptagon-local").mask_range_verdicts(
            0, 1 << code.length)
        assert (table == expected).all()

    def test_serial_below_zero_forces_sharding(self, monkeypatch):
        import repro.experiments.engine as engine

        seen = {}
        real = engine.run_cells

        def spy(cells, workers=None, *, executor=None):
            cells = list(cells)
            seen["cells"] = len(cells)
            return real(cells, 1)            # serial execution, same cells

        monkeypatch.setattr(engine, "run_cells", spy)
        code = make_code("pentagon-local")       # 2**11 masks
        table = recoverable_mask_table(code, workers=2, shard_masks=256,
                                       serial_below=0)
        assert seen["cells"] == (1 << code.length) // 256
        expected = make_code("pentagon-local").mask_range_verdicts(
            0, 1 << code.length)
        assert (table == expected).all()

    def test_explicit_executor_always_honoured(self, monkeypatch):
        import repro.experiments.engine as engine

        seen = {}
        real = engine.run_cells

        def spy(cells, workers=None, *, executor=None):
            seen["executor"] = executor
            return real(cells, 1)

        monkeypatch.setattr(engine, "run_cells", spy)
        executor = PooledExecutor(2)
        recoverable_mask_table(make_code("pentagon-local"),
                               executor=executor)
        assert seen["executor"] is executor


class TestLengthWall:
    def test_error_names_code_and_length(self):
        code = make_code("rs(26,22)")
        with pytest.raises(ValueError) as excinfo:
            brute_force_chain(code, FAST)
        message = str(excinfo.value)
        assert "rs(26,22)" in message
        assert "26" in message
        assert str(MAX_EXACT_LENGTH) in message

    def test_table_enforces_the_same_wall(self):
        code = make_code("polygon-9-local(4g,3p)")   # 37 slots
        with pytest.raises(ValueError, match=r"polygon-9-local\(4g,3p\)"):
            recoverable_mask_table(code)

    def test_sixteen_slots_now_allowed(self):
        """The old wall was 15; 3-group pentagon-local is 16 and works."""
        code = make_code("pentagon-local(3g,2p)")
        assert code.length == 16
        chain = brute_force_chain(code, FAST, workers=2)
        assert frozenset() in chain.transitions
