"""Picklability checker: lambdas and closures headed for the executor
seam are caught; module-level callables and thread-pool bound methods
pass."""

from __future__ import annotations

import textwrap

from repro.analysis import run_lint


def lint_source(tmp_path, source, rel="experiments/grid.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return run_lint(root=tmp_path, paths=[tmp_path],
                    checkers=["picklability"], context_paths=[])


def rules(report):
    return [(f.rule, f.line) for f in report.active]


class TestCellCallable:
    def test_lambda_fn_keyword(self, tmp_path):
        report = lint_source(tmp_path, """\
            from repro.experiments.engine import Cell

            CELLS = [Cell("exp", "k", fn=lambda rng: rng.random(), trials=3)]
        """)
        assert rules(report) == [("picklability.lambda-callable", 3)]

    def test_lambda_third_positional(self, tmp_path):
        report = lint_source(tmp_path, """\
            from repro.experiments.engine import Cell

            CELL = Cell("exp", "k", lambda rng: 0)
        """)
        assert rules(report) == [("picklability.lambda-callable", 3)]

    def test_nested_function_by_name(self, tmp_path):
        report = lint_source(tmp_path, """\
            from repro.experiments.engine import Cell

            def build():
                def trial(rng):
                    return rng.random()
                return Cell("exp", "k", fn=trial, trials=3)
        """)
        assert rules(report) == [("picklability.nested-callable", 6)]

    def test_module_level_function_is_fine(self, tmp_path):
        report = lint_source(tmp_path, """\
            from repro.experiments.engine import Cell

            def trial(rng):
                return rng.random()

            CELL = Cell("exp", "k", fn=trial, trials=3)
        """)
        assert report.ok()

    def test_partial_over_nested_function(self, tmp_path):
        report = lint_source(tmp_path, """\
            import functools
            from repro.experiments.engine import Cell

            def build(width):
                def trial(rng, w):
                    return rng.random() * w
                return Cell("exp", "k",
                            fn=functools.partial(trial, w=width))
        """)
        assert rules(report) == [("picklability.nested-callable", 8)]


class TestEngineEntryPoints:
    def test_lambda_inside_run_cells_args(self, tmp_path):
        report = lint_source(tmp_path, """\
            from repro.experiments.engine import run_cells

            def go(cells):
                return run_cells(cells, reduce=lambda xs: sum(xs))
        """)
        assert rules(report) == [("picklability.lambda-callable", 4)]


class TestSubmissionSites:
    def test_lambda_into_pool_submit(self, tmp_path):
        report = lint_source(tmp_path, """\
            def go(pool):
                return pool.submit(lambda: 1)
        """)
        assert rules(report) == [("picklability.lambda-callable", 2)]

    def test_nested_fn_into_pool_map(self, tmp_path):
        report = lint_source(tmp_path, """\
            def go(pool, items):
                def work(item):
                    return item * 2
                return pool.map(work, items)
        """)
        assert rules(report) == [("picklability.nested-callable", 4)]

    def test_bound_method_submit_is_fine(self, tmp_path):
        # thread pools don't pickle; bound methods of module-level
        # classes pickle fine for process pools too
        report = lint_source(tmp_path, """\
            class Server:
                def _serve(self, conn):
                    return conn

                def accept(self, pool, conn):
                    pool.submit(self._serve, conn)
        """)
        assert report.ok()

    def test_module_level_fn_into_map_is_fine(self, tmp_path):
        report = lint_source(tmp_path, """\
            def work(item):
                return item * 2

            def go(pool, items):
                return pool.map(work, items, chunksize=8)
        """)
        assert report.ok()


class TestScopeAndWaivers:
    def test_checker_runs_outside_experiments_too(self, tmp_path):
        # the executor seam is reachable from anywhere in the tree
        report = lint_source(tmp_path, """\
            def go(pool):
                return pool.submit(lambda: 1)
        """, rel="tools/driver.py")
        assert rules(report) == [("picklability.lambda-callable", 2)]

    def test_waiver(self, tmp_path):
        report = lint_source(tmp_path, """\
            def go(pool):
                return pool.submit(lambda: 1)  # lint: allow(picklability.lambda-callable): thread pool, never pickled
        """)
        assert report.ok()
        assert len(report.waived) == 1
