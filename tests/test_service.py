"""The storage service end to end: real namenode + datanode
subprocesses over loopback sockets.  Covers the acceptance scenario
(SIGKILL one datanode mid-load: reads keep succeeding degraded, the
checker repairs and re-homes every lost block) plus the two-phase
write guarantees and the checker's corruption scrub."""

import time

import pytest

from repro.service import (
    FaultPlan,
    RetryPolicy,
    ServiceCluster,
    StorageClient,
    WriteRefusedError,
    parse_fault_plan,
)
from repro.service.cluster import _is_settled
from repro.service.load import file_payload, run_load

#: Tight timings so failure detection fits in test time.
FAST = dict(block_bytes=2048, silence_timeout=1.2, check_period=0.3,
            heartbeat_interval=0.3)


def fast_retry(seed=0):
    return RetryPolicy(attempts=2, timeout=1.0, base_delay=0.05,
                       max_delay=0.2, seed=seed)


@pytest.fixture(scope="module")
def benign_cluster():
    """Shared cluster for tests that do not destroy datanodes."""
    with ServiceCluster(6, seed=2, **FAST) as cluster:
        yield cluster


class TestReadWrite:
    def test_round_trip_and_stat(self, benign_cluster):
        with benign_cluster.client(retry=fast_retry()) as client:
            data = file_payload(2, 0, 9 * 2048 * 2 + 77)
            info = client.write_file("rw-pentagon", data, "pentagon")
            assert info["stripes"] == 3          # padded final stripe
            assert client.read_file("rw-pentagon") == data
            stat = client.stat("rw-pentagon")
            assert stat["code_name"] == "pentagon"
            assert all(len(set(s)) == 5 for s in stat["stripes"])
            assert "rw-pentagon" in client.list_files()

    def test_replication_code_round_trip(self, benign_cluster):
        with benign_cluster.client(retry=fast_retry()) as client:
            data = file_payload(2, 1, 2048 + 5)
            client.write_file("rw-3rep", data, "3-rep")
            assert client.read_file("rw-3rep") == data

    def test_duplicate_name_refused_typed(self, benign_cluster):
        with benign_cluster.client(retry=fast_retry()) as client:
            client.write_file("dup", b"x" * 100, "3-rep")
            with pytest.raises(FileExistsError):
                client.write_file("dup", b"y" * 100, "3-rep")

    def test_missing_file_is_typed(self, benign_cluster):
        with benign_cluster.client(retry=fast_retry()) as client:
            with pytest.raises(FileNotFoundError):
                client.stat("never-written")

    def test_forced_degraded_read_reconstructs(self, benign_cluster):
        with benign_cluster.client(retry=fast_retry()) as client:
            data = file_payload(2, 2, 9 * 2048)
            client.write_file("deg", data, "pentagon")
            assert client.degraded_read("deg", 0) == data[:2048]
            assert client.counters["degraded_reads"] >= 1


class TestCheckerRepairsCorruption:
    def test_corrupt_fault_is_scrubbed_and_repaired(self, benign_cluster):
        cluster = benign_cluster
        with cluster.client(retry=fast_retry()) as client:
            data = file_payload(2, 3, 9 * 2048)
            client.write_file("rot", data, "pentagon")
            victim = client.stat("rot")["stripes"][0][0]
            # k=1: the very next data-path request rots one block.
            cluster.arm_faults(parse_fault_plan(
                f"corrupt:dn{victim}@k=1", seed=2))
            client.read_file("rot")              # trips the trigger
            before = cluster.status()["repair"]["done"]
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                status = cluster.status()
                if (status["repair"]["done"] > before
                        and _is_settled(status)):
                    break
                time.sleep(0.2)
            status = cluster.status()
            assert status["repair"]["done"] > before
            assert not status["repair"]["lost"]
            # Repaired in place: contents bit-exact again everywhere.
            assert client.read_file("rot") == data


class TestKillRecovery:
    def test_kill_one_datanode_reads_degrade_then_repair(self):
        """The tentpole acceptance path, driven through run_load."""
        plan = parse_fault_plan("kill:random@t=0.5", seed=7)
        with ServiceCluster(6, seed=7, **FAST) as cluster:
            report = run_load(
                cluster.address, files=2, file_bytes=4 * 2048,
                code_name="pentagon", duration=2.5, workers=2, seed=7,
                fault_plan=plan, retry=fast_retry(7),
                settle_timeout=30.0)
            assert report["reads"]["ops"] > 0
            assert report["reads"]["failed"] == 0          # 100% success
            assert report["reads"]["mismatched"] == 0      # bit-exact
            assert report["repair"]["settled"]             # queue drained
            assert not report["repair"]["lost"]
            assert report["repair"]["done"] >= 1
            assert len(report["alive"]) == 5               # one casualty
            # Same seed, same victim: the plan resolution is seeded.
            assert plan.resolve(range(6)) == plan.resolve(range(6))

    def test_hung_datanode_goes_silent_and_is_repaired_around(self):
        with ServiceCluster(6, seed=4, **FAST) as cluster:
            with cluster.client(retry=fast_retry(4)) as client:
                data = file_payload(4, 0, 9 * 2048)
                client.write_file("h", data, "pentagon")
                victim = client.stat("h")["stripes"][0][0]
                cluster.arm_faults(parse_fault_plan(
                    f"hang:dn{victim}@k=1", seed=4))
            # A fresh client (no pooled socket) pays the timeout once,
            # then decodes around the hung daemon.
            with cluster.client(retry=RetryPolicy(
                    attempts=1, timeout=0.6, base_delay=0.05,
                    max_delay=0.1)) as client:
                assert client.read_file("h") == data
                status = cluster.wait_settled(timeout=30.0)
                assert _is_settled(status)
                assert victim not in status["alive"]   # heartbeats stopped
                assert client.read_file("h") == data


class TestTwoPhaseWrites:
    def test_kill_mid_write_completes_by_replacement(self):
        """Satellite: a datanode SIGKILLed mid-write_file; with spare
        nodes the client re-places the stripe and the write completes,
        bit-exact."""
        with ServiceCluster(6, seed=5, **FAST) as cluster:
            # Every datanode serves its first request then dies?  No —
            # kill exactly one node on its first data-path request, so
            # the casualty dies mid-put of the very first stripe.
            cluster.arm_faults(parse_fault_plan("kill:dn3@k=1", seed=5))
            with cluster.client(retry=fast_retry(5)) as client:
                data = file_payload(5, 0, 9 * 2048 * 3 + 9)
                info = client.write_file("mw", data, "pentagon")
                assert info["stripes"] == 4
                assert client.read_file("mw") == data
                assert 3 not in {node
                                 for s in client.stat("mw")["stripes"]
                                 for node in s}

    def test_kill_mid_write_fails_clean_when_no_replacement(self):
        """Satellite: same kill, but with zero spare nodes the write
        must fail *cleanly* — typed error, name free again, no partial
        stripes visible."""
        with ServiceCluster(5, seed=6, **FAST) as cluster:
            cluster.arm_faults(parse_fault_plan("kill:dn1@k=1", seed=6))
            with cluster.client(retry=fast_retry(6)) as client:
                data = file_payload(6, 0, 9 * 2048 * 2)
                with pytest.raises(WriteRefusedError):
                    client.write_file("doomed", data, "pentagon")
                assert client.list_files() == []       # nothing visible
                with pytest.raises(FileNotFoundError):
                    client.stat("doomed")
                # The reservation was released: a rewrite is refused
                # for *capacity*, not because the name is stuck taken.
                with pytest.raises(WriteRefusedError, match="alive"):
                    client.write_file("doomed", data, "pentagon")

    def test_writes_refused_below_code_tolerance(self):
        with ServiceCluster(3, seed=8, **FAST) as cluster:
            with cluster.client(retry=fast_retry(8)) as client:
                client.write_file("ok", b"z" * 64, "3-rep")
                proc = cluster._procs[0]
                proc.kill()
                proc.wait()
                deadline = time.monotonic() + 10
                while (time.monotonic() < deadline
                       and 0 in cluster.namenode._alive_ids()):
                    time.sleep(0.1)
                with pytest.raises(WriteRefusedError):
                    client.write_file("nope", b"z" * 64, "3-rep")
                # Reads still fine: the service degrades to read-only.
                assert client.read_file("ok") == b"z" * 64
