"""The storage service end to end: real namenode + datanode
subprocesses over loopback sockets.  Covers the acceptance scenario
(SIGKILL one datanode mid-load: reads keep succeeding degraded, the
checker repairs and re-homes every lost block) plus the two-phase
write guarantees and the checker's corruption scrub."""

import socket
import time

import pytest

from repro.service import (
    FaultPlan,
    RetryPolicy,
    ServiceCluster,
    StorageClient,
    WriteRefusedError,
    parse_fault_plan,
)
from repro.service.cluster import _is_settled
from repro.service.datanode import call
from repro.service.load import file_payload, run_load

#: Tight timings so failure detection fits in test time.
FAST = dict(block_bytes=2048, silence_timeout=1.2, check_period=0.3,
            heartbeat_interval=0.3)


def fast_retry(seed=0):
    return RetryPolicy(attempts=2, timeout=1.0, base_delay=0.05,
                       max_delay=0.2, seed=seed)


@pytest.fixture(scope="module")
def benign_cluster():
    """Shared cluster for tests that do not destroy datanodes."""
    with ServiceCluster(6, seed=2, **FAST) as cluster:
        yield cluster


class TestReadWrite:
    def test_round_trip_and_stat(self, benign_cluster):
        with benign_cluster.client(retry=fast_retry()) as client:
            data = file_payload(2, 0, 9 * 2048 * 2 + 77)
            info = client.write_file("rw-pentagon", data, "pentagon")
            assert info["stripes"] == 3          # padded final stripe
            assert client.read_file("rw-pentagon") == data
            stat = client.stat("rw-pentagon")
            assert stat["code_name"] == "pentagon"
            assert all(len(set(s)) == 5 for s in stat["stripes"])
            assert "rw-pentagon" in client.list_files()

    def test_replication_code_round_trip(self, benign_cluster):
        with benign_cluster.client(retry=fast_retry()) as client:
            data = file_payload(2, 1, 2048 + 5)
            client.write_file("rw-3rep", data, "3-rep")
            assert client.read_file("rw-3rep") == data

    def test_duplicate_name_refused_typed(self, benign_cluster):
        with benign_cluster.client(retry=fast_retry()) as client:
            client.write_file("dup", b"x" * 100, "3-rep")
            with pytest.raises(FileExistsError):
                client.write_file("dup", b"y" * 100, "3-rep")

    def test_missing_file_is_typed(self, benign_cluster):
        with benign_cluster.client(retry=fast_retry()) as client:
            with pytest.raises(FileNotFoundError):
                client.stat("never-written")

    def test_forced_degraded_read_reconstructs(self, benign_cluster):
        with benign_cluster.client(retry=fast_retry()) as client:
            data = file_payload(2, 2, 9 * 2048)
            client.write_file("deg", data, "pentagon")
            assert client.degraded_read("deg", 0) == data[:2048]
            assert client.counters["degraded_reads"] >= 1


class TestCheckerRepairsCorruption:
    def test_corrupt_fault_is_scrubbed_and_repaired(self, benign_cluster):
        cluster = benign_cluster
        with cluster.client(retry=fast_retry()) as client:
            data = file_payload(2, 3, 9 * 2048)
            client.write_file("rot", data, "pentagon")
            victim = client.stat("rot")["stripes"][0][0]
            # k=1: the very next data-path request rots one block.
            cluster.arm_faults(parse_fault_plan(
                f"corrupt:dn{victim}@k=1", seed=2))
            client.read_file("rot")              # trips the trigger
            before = cluster.status()["repair"]["done"]
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                status = cluster.status()
                if (status["repair"]["done"] > before
                        and _is_settled(status)):
                    break
                time.sleep(0.2)
            status = cluster.status()
            assert status["repair"]["done"] > before
            assert not status["repair"]["lost"]
            # Repaired in place: contents bit-exact again everywhere.
            assert client.read_file("rot") == data


class TestKillRecovery:
    def test_kill_one_datanode_reads_degrade_then_repair(self):
        """The tentpole acceptance path, driven through run_load."""
        plan = parse_fault_plan("kill:random@t=0.5", seed=7)
        with ServiceCluster(6, seed=7, **FAST) as cluster:
            report = run_load(
                cluster.address, files=2, file_bytes=4 * 2048,
                code_name="pentagon", duration=2.5, workers=2, seed=7,
                fault_plan=plan, retry=fast_retry(7),
                settle_timeout=30.0)
            assert report["reads"]["ops"] > 0
            assert report["reads"]["failed"] == 0          # 100% success
            assert report["reads"]["mismatched"] == 0      # bit-exact
            assert report["repair"]["settled"]             # queue drained
            assert not report["repair"]["lost"]
            assert report["repair"]["done"] >= 1
            assert len(report["alive"]) == 5               # one casualty
            # Same seed, same victim: the plan resolution is seeded.
            assert plan.resolve(range(6)) == plan.resolve(range(6))

    def test_hung_datanode_goes_silent_and_is_repaired_around(self):
        with ServiceCluster(6, seed=4, **FAST) as cluster:
            with cluster.client(retry=fast_retry(4)) as client:
                data = file_payload(4, 0, 9 * 2048)
                client.write_file("h", data, "pentagon")
                victim = client.stat("h")["stripes"][0][0]
                cluster.arm_faults(parse_fault_plan(
                    f"hang:dn{victim}@k=1", seed=4))
            # A fresh client (no pooled socket) pays the timeout once,
            # then decodes around the hung daemon.
            with cluster.client(retry=RetryPolicy(
                    attempts=1, timeout=0.6, base_delay=0.05,
                    max_delay=0.1)) as client:
                assert client.read_file("h") == data
                status = cluster.wait_settled(timeout=30.0)
                assert _is_settled(status)
                assert victim not in status["alive"]   # heartbeats stopped
                assert client.read_file("h") == data


class TestTwoPhaseWrites:
    def test_kill_mid_write_completes_by_replacement(self):
        """Satellite: a datanode SIGKILLed mid-write_file; with spare
        nodes the client re-places the stripe and the write completes,
        bit-exact."""
        with ServiceCluster(6, seed=5, **FAST) as cluster:
            # Every datanode serves its first request then dies?  No —
            # kill exactly one node on its first data-path request, so
            # the casualty dies mid-put of the very first stripe.
            cluster.arm_faults(parse_fault_plan("kill:dn3@k=1", seed=5))
            with cluster.client(retry=fast_retry(5)) as client:
                data = file_payload(5, 0, 9 * 2048 * 3 + 9)
                info = client.write_file("mw", data, "pentagon")
                assert info["stripes"] == 4
                assert client.read_file("mw") == data
                assert 3 not in {node
                                 for s in client.stat("mw")["stripes"]
                                 for node in s}

    def test_kill_mid_write_fails_clean_when_no_replacement(self):
        """Satellite: same kill, but with zero spare nodes the write
        must fail *cleanly* — typed error, name free again, no partial
        stripes visible."""
        with ServiceCluster(5, seed=6, **FAST) as cluster:
            cluster.arm_faults(parse_fault_plan("kill:dn1@k=1", seed=6))
            with cluster.client(retry=fast_retry(6)) as client:
                data = file_payload(6, 0, 9 * 2048 * 2)
                with pytest.raises(WriteRefusedError):
                    client.write_file("doomed", data, "pentagon")
                assert client.list_files() == []       # nothing visible
                with pytest.raises(FileNotFoundError):
                    client.stat("doomed")
                # The reservation was released: a rewrite is refused
                # for *capacity*, not because the name is stuck taken.
                with pytest.raises(WriteRefusedError, match="alive"):
                    client.write_file("doomed", data, "pentagon")

    def test_writes_refused_below_code_tolerance(self):
        with ServiceCluster(3, seed=8, **FAST) as cluster:
            with cluster.client(retry=fast_retry(8)) as client:
                client.write_file("ok", b"z" * 64, "3-rep")
                proc = cluster._procs[0]
                proc.kill()
                proc.wait()
                deadline = time.monotonic() + 10
                while (time.monotonic() < deadline
                       and 0 in cluster.namenode._alive_ids()):
                    time.sleep(0.1)
                with pytest.raises(WriteRefusedError):
                    client.write_file("nope", b"z" * 64, "3-rep")
                # Reads still fine: the service degrades to read-only.
                assert client.read_file("ok") == b"z" * 64


def _inventory(address) -> dict:
    """A datanode's full block inventory over the raw framed protocol."""
    with socket.create_connection(address) as sock:
        return call(sock, "checksums", {"blocks": None})["checksums"]


class TestOrphanGC:
    """Satellite: the checker sweep reconciles datanode inventories
    against committed stripes and deletes orphaned blocks."""

    def test_injected_orphan_is_swept(self):
        with ServiceCluster(6, seed=9, reservation_timeout=1.0,
                            **FAST) as cluster:
            with cluster.client(retry=fast_retry(9)) as client:
                client.write_file("keep", file_payload(9, 0, 9 * 2048),
                                  "pentagon")
            address = cluster.namenode._addresses()[0]
            ghost = ("ghost", 0, 0)
            with socket.create_connection(address) as sock:
                call(sock, "put", {"block": ghost, "data": b"\xcc" * 64})
                assert ghost in call(
                    sock, "checksums", {"blocks": None})["checksums"]
            deadline = time.monotonic() + 10
            inventory = _inventory(address)
            while ghost in inventory and time.monotonic() < deadline:
                time.sleep(0.1)
                inventory = _inventory(address)
            assert ghost not in inventory
            # committed blocks survive every sweep
            with cluster.client(retry=fast_retry(9)) as client:
                assert (client.read_file("keep")
                        == file_payload(9, 0, 9 * 2048))
            assert cluster.status()["checker"]["gc_blocks"] >= 1

    def test_kill_mid_write_leaves_no_orphans(self):
        """A datanode SIGKILLed mid-write forces a stripe re-placement;
        blocks put for the abandoned attempt are orphans the checker
        must collect — every surviving inventory ends up a subset of
        the committed metadata."""
        with ServiceCluster(6, seed=5, reservation_timeout=1.0,
                            **FAST) as cluster:
            cluster.arm_faults(parse_fault_plan("kill:dn3@k=1", seed=5))
            with cluster.client(retry=fast_retry(5)) as client:
                data = file_payload(5, 0, 9 * 2048 * 3 + 9)
                client.write_file("mw", data, "pentagon")
                assert client.read_file("mw") == data
                cluster.wait_settled(timeout=30.0)
                stat = client.stat("mw")
            status = cluster.status()
            addresses = cluster.namenode._addresses()
            for node_id in status["alive"]:
                for name, stripe_index, _ in _inventory(
                        addresses[node_id]):
                    assert name == "mw"
                    assert node_id in stat["stripes"][stripe_index]

    def test_expired_reservation_is_garbage_collected(self):
        """An abandoned two-phase write (begin + put, never commit)
        expires and its blocks vanish from the datanodes."""
        with ServiceCluster(6, seed=10, reservation_timeout=0.5,
                            **FAST) as cluster:
            with cluster.client(retry=fast_retry(10)) as client:
                # Drive the two-phase protocol by hand and walk away
                # after the puts.
                client._nn_call("begin-write",
                                {"name": "limbo", "code_name": "3-rep"})
                placement = client._nn_call(
                    "place-stripe", {"code_name": "3-rep", "exclude": []})
                node_id = placement["slot_nodes"][0]
                address = placement["datanodes"][node_id]
                limbo = ("limbo", 0, 0)
                with socket.create_connection(address) as sock:
                    call(sock, "put",
                         {"block": limbo, "data": b"\xee" * 2048})
                deadline = time.monotonic() + 10
                inventory = _inventory(address)
                while limbo in inventory and time.monotonic() < deadline:
                    time.sleep(0.1)
                    inventory = _inventory(address)
                assert limbo not in inventory
                # the name is free again: the reservation expired
                with pytest.raises(FileNotFoundError):
                    client.stat("limbo")


class TestRackAwarePlacement:
    """Satellite: a rack map routes placement through
    RackAwarePlacement so one rack loss stays within code tolerance."""

    RACKS = [2, 2, 2]
    RACK_OF = {0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2}

    def test_stripes_span_racks(self):
        with ServiceCluster(6, seed=3, racks=self.RACKS,
                            **FAST) as cluster:
            with cluster.client(retry=fast_retry(3)) as client:
                client.write_file("r3", file_payload(3, 0, 2048), "3-rep")
                for nodes in client.stat("r3")["stripes"]:
                    racks = {self.RACK_OF[n] for n in set(nodes)}
                    assert len(racks) == 3       # one replica per rack
            status = cluster.status()
            for node_id, entry in status["datanodes"].items():
                assert entry["rack"] == self.RACK_OF[node_id]

    def test_single_rack_loss_stays_readable(self):
        with ServiceCluster(6, seed=3, racks=self.RACKS,
                            **FAST) as cluster:
            with cluster.client(retry=fast_retry(3)) as client:
                data = file_payload(3, 1, 9 * 2048)
                client.write_file("rr", data, "pentagon")
                rep = file_payload(3, 2, 2048)
                client.write_file("rrep", rep, "3-rep")
                # Take down all of rack 2 at once.
                for node_id in (4, 5):
                    proc = cluster._procs[node_id]
                    proc.kill()
                    proc.wait()
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    alive = set(cluster.namenode._alive_ids())
                    if not alive & {4, 5}:
                        break
                    time.sleep(0.1)
                assert not set(cluster.namenode._alive_ids()) & {4, 5}
                assert client.read_file("rr") == data
                assert client.read_file("rrep") == rep
