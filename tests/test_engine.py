"""Sweep-engine determinism and failure paths: every ported experiment
must produce bit-identical results at any worker count, any shard
layout, and under single-cell re-runs (small trial counts keep the
suite fast); crashed pool workers must not poison later sweeps."""

import os
import signal

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    fig2,
    fig3,
    fig4,
    fig5,
    repair_bandwidth,
    table1,
    transient,
)
from repro.experiments import engine
from repro.experiments.engine import (
    Cell,
    CellExecutionError,
    Executor,
    PooledExecutor,
    SerialExecutor,
    resolve_workers,
    run_cells,
    run_keyed,
)
from repro.experiments.runner import CellStats, trial_rng

WORKERS = 4


def draw_trial(rng, scale):
    """Top-level trial fn used by the engine-infrastructure tests."""
    return scale * float(rng.random())


def identity_cell(value):
    """Top-level single-call fn used by the engine-infrastructure tests."""
    return value


def failing_trial(rng, message):
    """Top-level trial fn that always raises (attribution tests)."""
    raise ValueError(message)


def kill_worker_once(rng, sentinel_path):
    """SIGKILL the hosting process the first time any worker runs this.

    The sentinel file is created atomically, so exactly one execution
    dies; every later one (fresh pool, or the in-process fallback)
    returns the same value ``draw_trial(rng, 1.0)`` would.
    """
    try:
        fd = os.open(sentinel_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return float(rng.random())
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def series_points(figure):
    return figure.points()


class TestEngineInfrastructure:
    def test_trial_cells_match_manual_loop(self):
        cell = Cell(experiment="t", key=("a",), fn=draw_trial, args=(2.0,),
                    trials=5)
        expected = CellStats.from_values(
            [2.0 * float(trial_rng("t", "a", i).random()) for i in range(5)])
        assert cell.run() == expected
        assert run_cells([cell], workers=1) == [expected]
        assert run_cells([cell], workers=WORKERS) == [expected]

    def test_shard_layout_does_not_change_results(self):
        plain = Cell(experiment="t", key=("a",), fn=draw_trial, args=(1.0,),
                     trials=10)
        sharded = Cell(experiment="t", key=("a",), fn=draw_trial, args=(1.0,),
                       trials=10, shard_trials=3)
        assert run_cells([plain], workers=1) == run_cells([sharded],
                                                          workers=WORKERS)

    def test_single_call_cells(self):
        cells = [Cell(experiment="t", key=(i,), fn=identity_cell, args=(i,))
                 for i in range(7)]
        assert run_cells(cells, workers=WORKERS) == list(range(7))

    def test_seed_key_shares_streams_across_cells(self):
        a = Cell(experiment="t", key=("a",), seed_key=("shared",),
                 fn=draw_trial, args=(1.0,), trials=4)
        b = Cell(experiment="t", key=("b",), seed_key=("shared",),
                 fn=draw_trial, args=(1.0,), trials=4)
        ra, rb = run_cells([a, b], workers=WORKERS)
        assert ra == rb

    def test_run_keyed(self):
        cells = [Cell(experiment="t", key=(i,), fn=identity_cell, args=(i,))
                 for i in range(3)]
        assert run_keyed(cells) == {(0,): 0, (1,): 1, (2,): 2}
        with pytest.raises(ValueError):
            run_keyed(cells + cells)

    def test_reduce_need_not_pickle(self):
        """Only (fn, args, seeds, range) cross the process boundary, so
        a closure reduce is fine even on parallel sharded runs."""
        cell = Cell(experiment="t", key=("a",), fn=draw_trial, args=(1.0,),
                    trials=8, shard_trials=2, reduce=lambda values: sum(values))
        assert run_cells([cell], workers=WORKERS) == [cell.run()]

    def test_rejects_unpicklable_fns(self):
        def nested(rng):
            return 0.0

        with pytest.raises(ValueError):
            Cell(experiment="t", key=("a",), fn=nested, trials=1)

    def test_rejects_empty_trials(self):
        with pytest.raises(ValueError):
            Cell(experiment="t", key=("a",), fn=draw_trial, trials=0)

    def test_rejects_reduce_on_single_call_cells(self):
        """A single-call cell would silently skip its reduce — loud spec
        bug instead of un-reduced results."""
        with pytest.raises(ValueError, match="reduce"):
            Cell(experiment="t", key=("a",), fn=identity_cell, args=(1,),
                 reduce=list)

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers(3) == 3
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        assert resolve_workers(2) == 2
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_resolve_workers_rejects_bad_counts(self, monkeypatch):
        """CLI help, env var and resolve_workers agree: >= 0, 0 per CPU."""
        with pytest.raises(ValueError, match=">= 0"):
            resolve_workers(-1)
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(ValueError, match=">= 0"):
            resolve_workers(None)
        monkeypatch.setenv("REPRO_WORKERS", "two")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)


class RecordingExecutor(Executor):
    """Test double: runs in-process, remembers every batch it was given."""

    def __init__(self):
        self.batches = []

    def run(self, payloads):
        self.batches.append(list(payloads))
        return [engine._run_unit(payload) for payload in payloads]


class TestExecutorSeam:
    def _cells(self):
        return [Cell(experiment="t", key=(i,), fn=draw_trial, args=(2.0,),
                     trials=3) for i in range(4)]

    def test_custom_executor_matches_serial(self):
        recording = RecordingExecutor()
        assert (run_cells(self._cells(), executor=recording)
                == run_cells(self._cells(), workers=1))
        assert len(recording.batches) == 1
        assert len(recording.batches[0]) == 4

    def test_workers_argument_accepts_an_executor(self):
        """The CLI threads --distributed coordinators through the
        builders' existing workers parameter."""
        recording = RecordingExecutor()
        assert (run_cells(self._cells(), workers=recording)
                == run_cells(self._cells(), workers=1))
        assert recording.batches

    def test_builtin_executors_agree(self):
        serial = SerialExecutor()
        pooled = PooledExecutor(WORKERS)
        payloads = [cell.unit_payload(0, cell.trials)
                    for cell in self._cells()]
        assert serial.run(payloads) == pooled.run(payloads)

    def test_rejects_non_executor(self):
        with pytest.raises(TypeError, match="Executor"):
            run_cells(self._cells(), executor=3)
        with pytest.raises(ValueError):
            PooledExecutor(0)


class TestFailurePaths:
    def test_cell_failure_names_owner_serial(self):
        cell = Cell(experiment="exp", key=("bad", 1), fn=failing_trial,
                    args=("boom",), trials=2)
        with pytest.raises(CellExecutionError,
                           match=r"cell \('bad', 1\) of experiment 'exp'"
                                 r".*ValueError: boom"):
            run_cells([cell], workers=1)

    def test_cell_failure_names_owner_pooled(self):
        cells = [Cell(experiment="exp", key=("ok",), fn=draw_trial,
                      args=(1.0,), trials=2),
                 Cell(experiment="exp", key=("bad", 2), fn=failing_trial,
                      args=("pow",), trials=2)]
        with pytest.raises(CellExecutionError, match=r"\('bad', 2\)"):
            run_cells(cells, workers=2)
        # a cell bug must not evict the (healthy) cached pool
        assert 2 in engine._POOLS

    def test_killed_pool_worker_is_evicted_and_batch_retried(self, tmp_path):
        """An OOM-killed worker breaks the whole pool; the engine must
        evict the cached entry, rerun on a fresh pool, and keep later
        sweeps at that count working."""
        sentinel = str(tmp_path / "killed")
        cells = [Cell(experiment="kill", key=(i,), fn=kill_worker_once,
                      args=(sentinel,), trials=3) for i in range(6)]
        expected = run_cells(
            [Cell(experiment="kill", key=(i,), fn=draw_trial, args=(1.0,),
                  trials=3) for i in range(6)],
            workers=1)
        with pytest.warns(RuntimeWarning, match="evicted"):
            assert run_cells(cells, workers=2) == expected
        assert os.path.exists(sentinel)
        # the cache now holds a healthy replacement pool
        assert run_cells(cells, workers=2) == expected

    def test_second_pool_failure_falls_back_to_serial(self, monkeypatch):
        class AlwaysBroken:
            def map(self, fn, payloads, chunksize=1):
                raise RuntimeError("pool is a smoking crater")

        built, evicted = [], []
        monkeypatch.setattr(
            engine, "_pool",
            lambda workers: built.append(workers) or AlwaysBroken())
        monkeypatch.setattr(
            engine, "_evict_pool", lambda workers: evicted.append(workers))
        cells = [Cell(experiment="t", key=(i,), fn=draw_trial, args=(1.0,),
                      trials=2) for i in range(3)]
        with pytest.warns(RuntimeWarning):
            assert run_cells(cells, workers=3) == run_cells(cells, workers=1)
        assert built == [3, 3]
        assert evicted == [3, 3]


class TestExperimentDeterminism:
    """workers=1 and workers=4 agree exactly for every ported sweep."""

    def test_fig3_panel(self):
        serial = fig3.locality_panel(2, trials=4, workers=1)
        parallel = fig3.locality_panel(2, trials=4, workers=WORKERS)
        assert series_points(serial) == series_points(parallel)

    def test_fig3_single_cell_rerun_matches_sweep(self):
        panel = fig3.locality_panel(2, trials=4, workers=WORKERS)
        stats = fig3.locality_cell("pentagon", "delay", 50.0, 2, trials=4)
        assert panel.get("pent-DS").y_at(50.0) == stats.mean

    def test_table1(self):
        serial = table1.build_table1(workers=1)
        parallel = table1.build_table1(workers=WORKERS)
        assert serial.rows == parallel.rows

    def test_table1_single_row_rerun_matches_sweep(self):
        result = table1.build_table1(workers=WORKERS)
        row = table1.table1_row("pentagon", result.params, table1.NODE_COUNT)
        assert result.row("pentagon") == row

    def test_fig2(self):
        assert fig2.figure2(workers=1) == fig2.figure2(workers=WORKERS)

    def test_fig4(self):
        serial = fig4.figure4(runs=3, workers=1)
        parallel = fig4.figure4(runs=3, workers=WORKERS)
        for name in ("job_time", "traffic", "locality"):
            assert series_points(serial[name]) == series_points(parallel[name])

    def test_fig5(self):
        serial = fig5.figure5(runs=2, workers=1)
        parallel = fig5.figure5(runs=2, workers=WORKERS)
        for name in ("traffic", "locality"):
            assert series_points(serial[name]) == series_points(parallel[name])

    def test_repair_bandwidth(self):
        assert (repair_bandwidth.measure_all(workers=WORKERS)
                == repair_bandwidth.measure_all(workers=1))

    def test_transient(self):
        assert (transient.timeout_sweep(workers=WORKERS)
                == transient.timeout_sweep(workers=1))

    def test_ablations_delay_sensitivity(self):
        serial = ablations.delay_sensitivity(trials=4, skip_levels=(0, 25),
                                             workers=1)
        parallel = ablations.delay_sensitivity(trials=4, skip_levels=(0, 25),
                                               workers=WORKERS)
        assert series_points(serial) == series_points(parallel)

    def test_ablations_slots_crossover(self):
        serial = ablations.slots_crossover(trials=3, slot_range=(2, 8),
                                           workers=1)
        parallel = ablations.slots_crossover(trials=3, slot_range=(2, 8),
                                             workers=WORKERS)
        assert series_points(serial) == series_points(parallel)

    def test_ablations_degraded_sweep(self):
        assert (ablations.degraded_job_sweep(workers=WORKERS)
                == ablations.degraded_job_sweep(workers=1))

    def test_ablations_hl_equivalence(self):
        assert (ablations.heptagon_local_equivalence(trials=4, workers=WORKERS)
                == ablations.heptagon_local_equivalence(trials=4, workers=1))


class TestMonteCarloSharding:
    def test_worker_count_invariant(self):
        serial = table1.monte_carlo_validation(
            codes=("3-rep",), trials=60, shard_trials=20, workers=1)
        parallel = table1.monte_carlo_validation(
            codes=("3-rep",), trials=60, shard_trials=20, workers=WORKERS)
        assert serial == parallel

    def test_shards_merge_exactly(self):
        """sum of independently seeded shard totals == the sweep value."""
        from repro.core import make_code
        from repro.reliability import simulate_group_mttd_total

        code = make_code("3-rep")
        shards, shard_trials = 3, 20
        total = sum(
            simulate_group_mttd_total(
                code, table1.MC_PARAMS,
                trial_rng("table1-mc", "3-rep", shard), trials=shard_trials)
            for shard in range(shards)
        )
        [row] = table1.monte_carlo_validation(
            codes=("3-rep",), trials=shards * shard_trials,
            shard_trials=shard_trials, workers=WORKERS)
        assert row.simulated_mttd_hours == total / (shards * shard_trials)

    def test_total_matches_mean_entry_point(self):
        from repro.core import make_code
        from repro.reliability import (
            simulate_group_mttd,
            simulate_group_mttd_total,
        )

        code = make_code("pentagon")
        mean = simulate_group_mttd(code, table1.MC_PARAMS,
                                   np.random.default_rng(3), trials=40)
        total = simulate_group_mttd_total(code, table1.MC_PARAMS,
                                          np.random.default_rng(3), trials=40)
        assert mean == total / 40
