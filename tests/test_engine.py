"""Sweep-engine determinism: every ported experiment must produce
bit-identical results at any worker count, any shard layout, and under
single-cell re-runs (small trial counts keep the suite fast)."""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    fig2,
    fig3,
    fig4,
    fig5,
    repair_bandwidth,
    table1,
    transient,
)
from repro.experiments.engine import Cell, resolve_workers, run_cells, run_keyed
from repro.experiments.runner import CellStats, trial_rng

WORKERS = 4


def draw_trial(rng, scale):
    """Top-level trial fn used by the engine-infrastructure tests."""
    return scale * float(rng.random())


def identity_cell(value):
    """Top-level single-call fn used by the engine-infrastructure tests."""
    return value


def series_points(figure):
    return [(s.label, s.xs, s.ys, s.spreads) for s in figure.series]


class TestEngineInfrastructure:
    def test_trial_cells_match_manual_loop(self):
        cell = Cell(experiment="t", key=("a",), fn=draw_trial, args=(2.0,),
                    trials=5)
        expected = CellStats.from_values(
            [2.0 * float(trial_rng("t", "a", i).random()) for i in range(5)])
        assert cell.run() == expected
        assert run_cells([cell], workers=1) == [expected]
        assert run_cells([cell], workers=WORKERS) == [expected]

    def test_shard_layout_does_not_change_results(self):
        plain = Cell(experiment="t", key=("a",), fn=draw_trial, args=(1.0,),
                     trials=10)
        sharded = Cell(experiment="t", key=("a",), fn=draw_trial, args=(1.0,),
                       trials=10, shard_trials=3)
        assert run_cells([plain], workers=1) == run_cells([sharded],
                                                          workers=WORKERS)

    def test_single_call_cells(self):
        cells = [Cell(experiment="t", key=(i,), fn=identity_cell, args=(i,))
                 for i in range(7)]
        assert run_cells(cells, workers=WORKERS) == list(range(7))

    def test_seed_key_shares_streams_across_cells(self):
        a = Cell(experiment="t", key=("a",), seed_key=("shared",),
                 fn=draw_trial, args=(1.0,), trials=4)
        b = Cell(experiment="t", key=("b",), seed_key=("shared",),
                 fn=draw_trial, args=(1.0,), trials=4)
        ra, rb = run_cells([a, b], workers=WORKERS)
        assert ra == rb

    def test_run_keyed(self):
        cells = [Cell(experiment="t", key=(i,), fn=identity_cell, args=(i,))
                 for i in range(3)]
        assert run_keyed(cells) == {(0,): 0, (1,): 1, (2,): 2}
        with pytest.raises(ValueError):
            run_keyed(cells + cells)

    def test_reduce_need_not_pickle(self):
        """Only (fn, args, seeds, range) cross the process boundary, so
        a closure reduce is fine even on parallel sharded runs."""
        cell = Cell(experiment="t", key=("a",), fn=draw_trial, args=(1.0,),
                    trials=8, shard_trials=2, reduce=lambda values: sum(values))
        assert run_cells([cell], workers=WORKERS) == [cell.run()]

    def test_rejects_unpicklable_fns(self):
        def nested(rng):
            return 0.0

        with pytest.raises(ValueError):
            Cell(experiment="t", key=("a",), fn=nested, trials=1)

    def test_rejects_empty_trials(self):
        with pytest.raises(ValueError):
            Cell(experiment="t", key=("a",), fn=draw_trial, trials=0)

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers(3) == 3
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        assert resolve_workers(2) == 2
        import os
        assert resolve_workers(0) == (os.cpu_count() or 1)


class TestExperimentDeterminism:
    """workers=1 and workers=4 agree exactly for every ported sweep."""

    def test_fig3_panel(self):
        serial = fig3.locality_panel(2, trials=4, workers=1)
        parallel = fig3.locality_panel(2, trials=4, workers=WORKERS)
        assert series_points(serial) == series_points(parallel)

    def test_fig3_single_cell_rerun_matches_sweep(self):
        panel = fig3.locality_panel(2, trials=4, workers=WORKERS)
        stats = fig3.locality_cell("pentagon", "delay", 50.0, 2, trials=4)
        assert panel.get("pent-DS").y_at(50.0) == stats.mean

    def test_table1(self):
        serial = table1.build_table1(workers=1)
        parallel = table1.build_table1(workers=WORKERS)
        assert serial.rows == parallel.rows

    def test_table1_single_row_rerun_matches_sweep(self):
        result = table1.build_table1(workers=WORKERS)
        row = table1.table1_row("pentagon", result.params, table1.NODE_COUNT)
        assert result.row("pentagon") == row

    def test_fig2(self):
        assert fig2.figure2(workers=1) == fig2.figure2(workers=WORKERS)

    def test_fig4(self):
        serial = fig4.figure4(runs=3, workers=1)
        parallel = fig4.figure4(runs=3, workers=WORKERS)
        for name in ("job_time", "traffic", "locality"):
            assert series_points(serial[name]) == series_points(parallel[name])

    def test_fig5(self):
        serial = fig5.figure5(runs=2, workers=1)
        parallel = fig5.figure5(runs=2, workers=WORKERS)
        for name in ("traffic", "locality"):
            assert series_points(serial[name]) == series_points(parallel[name])

    def test_repair_bandwidth(self):
        assert (repair_bandwidth.measure_all(workers=WORKERS)
                == repair_bandwidth.measure_all(workers=1))

    def test_transient(self):
        assert (transient.timeout_sweep(workers=WORKERS)
                == transient.timeout_sweep(workers=1))

    def test_ablations_delay_sensitivity(self):
        serial = ablations.delay_sensitivity(trials=4, skip_levels=(0, 25),
                                             workers=1)
        parallel = ablations.delay_sensitivity(trials=4, skip_levels=(0, 25),
                                               workers=WORKERS)
        assert series_points(serial) == series_points(parallel)

    def test_ablations_slots_crossover(self):
        serial = ablations.slots_crossover(trials=3, slot_range=(2, 8),
                                           workers=1)
        parallel = ablations.slots_crossover(trials=3, slot_range=(2, 8),
                                             workers=WORKERS)
        assert series_points(serial) == series_points(parallel)

    def test_ablations_degraded_sweep(self):
        assert (ablations.degraded_job_sweep(workers=WORKERS)
                == ablations.degraded_job_sweep(workers=1))

    def test_ablations_hl_equivalence(self):
        assert (ablations.heptagon_local_equivalence(trials=4, workers=WORKERS)
                == ablations.heptagon_local_equivalence(trials=4, workers=1))


class TestMonteCarloSharding:
    def test_worker_count_invariant(self):
        serial = table1.monte_carlo_validation(
            codes=("3-rep",), trials=60, shard_trials=20, workers=1)
        parallel = table1.monte_carlo_validation(
            codes=("3-rep",), trials=60, shard_trials=20, workers=WORKERS)
        assert serial == parallel

    def test_shards_merge_exactly(self):
        """sum of independently seeded shard totals == the sweep value."""
        from repro.core import make_code
        from repro.reliability import simulate_group_mttd_total

        code = make_code("3-rep")
        shards, shard_trials = 3, 20
        total = sum(
            simulate_group_mttd_total(
                code, table1.MC_PARAMS,
                trial_rng("table1-mc", "3-rep", shard), trials=shard_trials)
            for shard in range(shards)
        )
        [row] = table1.monte_carlo_validation(
            codes=("3-rep",), trials=shards * shard_trials,
            shard_trials=shard_trials, workers=WORKERS)
        assert row.simulated_mttd_hours == total / (shards * shard_trials)

    def test_total_matches_mean_entry_point(self):
        from repro.core import make_code
        from repro.reliability import (
            simulate_group_mttd,
            simulate_group_mttd_total,
        )

        code = make_code("pentagon")
        mean = simulate_group_mttd(code, table1.MC_PARAMS,
                                   np.random.default_rng(3), trials=40)
        total = simulate_group_mttd_total(code, table1.MC_PARAMS,
                                          np.random.default_rng(3), trials=40)
        assert mean == total / 40
