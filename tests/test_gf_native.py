"""Native GF(2^8) backend: selection seam, bit-identity, fallback.

The native C kernels must change *nothing* observable except wall
time.  This suite fuzzes bit-identity between the ``native``,
``numpy`` and ``scalar`` backends across odd block sizes, unaligned
and non-contiguous buffers, and every registry-constructible code;
pins down the backend-selection contract (``REPRO_GF_BACKEND``,
:func:`set_backend`, warn-once degradation when native is requested
but unavailable); and covers the satellite fixes that ride along
(bounded thread-local scratch, the fused :func:`linear_combine`
drop-in).

Everything here passes on a host with no C compiler: tests that need
the built library are skipped, and the rest exercise exactly the
degraded path such a host runs.
"""

import threading
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_code
from repro.core.registry import available_codes
from repro.gf import (
    BACKEND_ENV,
    GF256,
    NATIVE_MIN_BYTES,
    PACKED_MIN_BYTES,
    BatchedLinearMap,
    linear_combine,
)
from repro.gf import kernels, native

NATIVE = native.load() is not None
needs_native = pytest.mark.skipif(
    not NATIVE, reason=f"native GF kernels unavailable: {native.error()}")


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    kernels.set_backend(None)


def random_case(seed, m, k, size):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, 256, (m, k), dtype=np.uint8)
    buffers = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(k)]
    return rows, buffers


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            kernels.set_backend("bogus")
        with pytest.raises(ValueError):
            BatchedLinearMap([[1]], backend="bogus")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "scalar")
        assert kernels.requested_backend() == "scalar"
        assert kernels.active_backend() == "scalar"
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert kernels.active_backend() == "numpy"

    def test_invalid_env_var_is_loud(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "turbo")
        with pytest.raises(ValueError, match="turbo"):
            kernels.requested_backend()

    def test_set_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "scalar")
        kernels.set_backend("numpy")
        assert kernels.active_backend() == "numpy"
        kernels.set_backend(None)
        assert kernels.active_backend() == "scalar"

    @needs_native
    def test_auto_resolves_to_native_when_available(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert kernels.requested_backend() == "auto"
        assert kernels.active_backend() == "native"

    def test_packed_threshold_follows_backend(self):
        kernels.set_backend("numpy")
        assert kernels.packed_threshold() == PACKED_MIN_BYTES
        if NATIVE:
            kernels.set_backend("native")
            assert kernels.packed_threshold() == NATIVE_MIN_BYTES


class TestFallback:
    def test_native_request_degrades_with_one_warning(self, monkeypatch):
        monkeypatch.setattr(native, "_load_uncached",
                            lambda: (None, "no compiler (simulated)"))
        native.reset()
        monkeypatch.setattr(kernels, "_FALLBACK_WARNED", False)
        try:
            kernels.set_backend("native")
            with pytest.warns(RuntimeWarning, match="no compiler"):
                assert kernels.active_backend() == "numpy"
            with warnings.catch_warnings():
                warnings.simplefilter("error")       # second call: silent
                assert kernels.active_backend() == "numpy"
            assert kernels.native_available() is False
            assert "simulated" in kernels.native_error()
        finally:
            native.reset()

    def test_auto_degrades_silently(self, monkeypatch):
        monkeypatch.setattr(native, "_load_uncached",
                            lambda: (None, "no compiler (simulated)"))
        native.reset()
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert kernels.active_backend() == "numpy"
        finally:
            native.reset()

    def test_kernels_stay_correct_without_native(self, monkeypatch):
        """A pinned-native kernel on a compilerless host still computes."""
        monkeypatch.setattr(native, "_load_uncached",
                            lambda: (None, "no compiler (simulated)"))
        native.reset()
        try:
            rows, buffers = random_case(1, 3, 4, NATIVE_MIN_BYTES + 1)
            pinned = BatchedLinearMap(rows, backend="native").apply(buffers)
            scalar = BatchedLinearMap(rows, backend="scalar").apply(buffers)
            assert np.array_equal(pinned, scalar)
            combined = linear_combine(rows[0], buffers)
            assert np.array_equal(combined,
                                  GF256.combine(rows[0], buffers))
        finally:
            native.reset()

    @needs_native
    def test_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        native.reset()
        try:
            assert native.load() is not None
            assert list(tmp_path.glob("repro_gf_native_*.so"))
        finally:
            monkeypatch.delenv("REPRO_NATIVE_CACHE")
            native.reset()


class TestBitIdentityFuzz:
    """native == numpy == scalar, byte for byte, on adversarial shapes."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           m=st.integers(1, 6), k=st.integers(1, 6),
           size=st.integers(NATIVE_MIN_BYTES - 2, NATIVE_MIN_BYTES + 66))
    def test_backends_agree_around_native_floor(self, seed, m, k, size):
        rows, buffers = random_case(seed, m, k, size)
        outputs = {
            backend: BatchedLinearMap(rows, backend=backend).apply(buffers)
            for backend in ("scalar", "numpy", "native")
        }
        assert np.array_equal(outputs["numpy"], outputs["scalar"])
        assert np.array_equal(outputs["native"], outputs["scalar"])

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           size=st.integers(PACKED_MIN_BYTES, PACKED_MIN_BYTES + 3))
    def test_backends_agree_on_numpy_packed_sizes(self, seed, size):
        rows, buffers = random_case(seed, 5, 4, size)
        outputs = {
            backend: BatchedLinearMap(rows, backend=backend).apply(buffers)
            for backend in ("scalar", "numpy", "native")
        }
        assert np.array_equal(outputs["numpy"], outputs["scalar"])
        assert np.array_equal(outputs["native"], outputs["scalar"])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), offset=st.integers(0, 3),
           stride=st.integers(2, 3))
    def test_unaligned_and_noncontiguous_buffers(self, seed, offset, stride):
        size = NATIVE_MIN_BYTES + 7
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, 256, (3, 3), dtype=np.uint8)
        backing = rng.integers(0, 256, (3, stride * size + offset),
                               dtype=np.uint8)
        buffers = [backing[i, offset:offset + stride * size:stride]
                   for i in range(3)]
        assert not buffers[0].flags.c_contiguous
        outputs = {
            backend: BatchedLinearMap(rows, backend=backend).apply(buffers)
            for backend in ("scalar", "numpy", "native")
        }
        assert np.array_equal(outputs["numpy"], outputs["scalar"])
        assert np.array_equal(outputs["native"], outputs["scalar"])

    def test_read_only_input_views(self):
        rows, buffers = random_case(3, 2, 3, NATIVE_MIN_BYTES)
        frozen = [GF256.asarray(buffer.tobytes()) for buffer in buffers]
        assert not frozen[0].flags.writeable
        for backend in ("numpy", "native"):
            assert np.array_equal(
                BatchedLinearMap(rows, backend=backend).apply(frozen),
                BatchedLinearMap(rows, backend="scalar").apply(buffers))


class TestRegistryCodesAcrossBackends:
    @pytest.mark.parametrize("code_name", available_codes())
    def test_encode_decode_bit_identical(self, code_name):
        code = make_code(code_name)
        rng = np.random.default_rng(17)
        size = NATIVE_MIN_BYTES + 1                 # odd, native-eligible
        data = [rng.integers(0, 256, size, dtype=np.uint8)
                for _ in range(code.k)]
        encoded_by = {}
        decoded_by = {}
        for backend in ("scalar", "numpy", "native"):
            kernels.set_backend(backend)
            encoded = code.encode(data)
            failed = set(range(code.fault_tolerance))
            available = {i: encoded[i]
                         for i in code.layout.surviving_symbols(failed)}
            encoded_by[backend] = encoded
            decoded_by[backend] = code.decode_data(available)
        for backend in ("numpy", "native"):
            for a, b in zip(encoded_by[backend], encoded_by["scalar"]):
                assert np.array_equal(a, b), f"{code_name} encode {backend}"
            for a, b in zip(decoded_by[backend], decoded_by["scalar"]):
                assert np.array_equal(a, b), f"{code_name} decode {backend}"
        for expected, actual in zip(data, decoded_by["scalar"]):
            assert np.array_equal(expected, actual)


class TestLinearCombine:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), nparts=st.integers(1, 6),
           length=st.integers(0, 300))
    def test_matches_gf256_combine(self, seed, nparts, length):
        rng = np.random.default_rng(seed)
        coefficients = [int(c) for c in rng.integers(0, 256, nparts)]
        buffers = [rng.integers(0, 256, length, dtype=np.uint8)
                   for _ in range(nparts)]
        got = linear_combine(coefficients, buffers)
        want = GF256.combine(coefficients, buffers, length=length)
        assert got.dtype == np.uint8
        assert np.array_equal(got, want)

    @needs_native
    def test_large_blocks_on_native_backend(self):
        kernels.set_backend("native")
        rng = np.random.default_rng(23)
        coefficients = [0, 1, 37, 255]
        buffers = [rng.integers(0, 256, 1 << 17, dtype=np.uint8)
                   for _ in range(4)]
        assert np.array_equal(
            linear_combine(coefficients, buffers),
            GF256.combine(coefficients, buffers))

    def test_all_zero_coefficients(self):
        buffers = [np.ones(64, dtype=np.uint8)] * 2
        assert not linear_combine([0, 0], buffers).any()

    def test_validation(self):
        with pytest.raises(ValueError, match="mismatch"):
            linear_combine([1], [])
        with pytest.raises(ValueError, match="length"):
            linear_combine([1, 1], [np.zeros(4, np.uint8),
                                    np.zeros(5, np.uint8)])
        with pytest.raises(ValueError, match="empty"):
            linear_combine([], [])
        with pytest.raises(ValueError, match="element"):
            linear_combine([256], [np.zeros(4, np.uint8)])
        assert len(linear_combine([], [], length=9)) == 9


class TestScratchCache:
    def test_bounded_per_thread(self):
        kernels._SCRATCH.pairs.clear()
        for words in range(512, 512 + 3 * kernels._SCRATCH_LIMIT):
            kernels._scratch_pair(np.uint32, words)
        assert len(kernels._SCRATCH.pairs) <= kernels._SCRATCH_LIMIT

    def test_thread_local_isolation(self):
        mine = kernels._scratch_pair(np.uint64, 128)
        other = {}

        def worker():
            other["pair"] = kernels._scratch_pair(np.uint64, 128)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert other["pair"][0] is not mine[0]

    @pytest.mark.parametrize("backend", ["numpy", "native"])
    def test_concurrent_apply_bit_identical(self, backend):
        if backend == "native" and not NATIVE:
            pytest.skip("native GF kernels unavailable")
        rows, buffers = random_case(29, 4, 5, PACKED_MIN_BYTES)
        kernel = BatchedLinearMap(rows, backend=backend)
        expected = BatchedLinearMap(rows, backend="scalar").apply(buffers)
        results = [None] * 8

        def worker(slot):
            results[slot] = kernel.apply(buffers)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(results))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for result in results:
            assert np.array_equal(result, expected)


@needs_native
class TestNativeDiagnostics:
    def test_simd_flag_is_bool(self):
        assert isinstance(native.simd_active(), bool)

    def test_abi_version_checked(self):
        assert native.load().lib.repro_gf_native_abi() == native.ABI_VERSION

    def test_error_is_none_when_loaded(self):
        assert native.error() is None
        assert kernels.native_error() is None


class TestSanitizeProfile:
    """$REPRO_NATIVE_SANITIZE builds instrumented kernels (CI runs this
    suite under address,undefined with the ASan runtime preloaded)."""

    def test_empty_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_SANITIZE", raising=False)
        assert native.sanitize_profile() == ()

    def test_parsing_sorts_strips_and_dedups(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE",
                           " undefined, address ,undefined,")
        assert native.sanitize_profile() == ("address", "undefined")

    def test_profile_is_part_of_the_cache_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_SANITIZE", raising=False)
        plain = native._source_digest()
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "address,undefined")
        sanitized = native._source_digest()
        assert plain != sanitized

    @needs_native
    def test_sanitized_build_is_instrumented(self, monkeypatch, tmp_path):
        # compile (not load: dlopen'ing an ASan library needs the
        # runtime preloaded in the host process) and check that the
        # binary references the sanitizer runtimes
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "address,undefined")
        so_path = tmp_path / f"repro_gf_native_{native._source_digest()}.so"
        assert native._build_library(so_path) is None
        blob = so_path.read_bytes()
        assert b"__asan" in blob
        assert b"__ubsan" in blob
