"""Tests for the delay, max-matching and peeling schedulers."""

import numpy as np
import pytest

from repro.scheduling import (
    Assignment,
    DelayScheduler,
    DelaySchedulerError,
    MaxMatchingScheduler,
    PeelingScheduler,
    Task,
    load_percent,
    make_scheduler,
    maximum_matching_count,
    tasks_for_load,
)
from repro.workloads import generate_tasks, workload_for_load
from repro.core import make_code


def simple_tasks():
    return [
        Task(0, 0, (0, 1)),
        Task(1, 0, (0, 1)),
        Task(2, 0, (0, 2)),
        Task(3, 1, (3,)),
    ]


class TestAssignmentModel:
    def test_place_and_stats(self):
        assignment = Assignment(node_count=4, slots_per_node=2)
        tasks = simple_tasks()
        assignment.place(tasks[0], 0)
        assignment.place(tasks[1], 1)
        assignment.place(tasks[2], 3)   # remote
        assert assignment.local_count == 2
        assert assignment.remote_count == 1
        assert assignment.locality_percent() == pytest.approx(200 / 3)

    def test_double_placement_rejected(self):
        assignment = Assignment(2, 1)
        task = Task(0, 0, (0,))
        assignment.place(task, 0)
        with pytest.raises(ValueError):
            assignment.place(task, 1)

    def test_capacity_validation(self):
        assignment = Assignment(1, 1)
        assignment.place(Task(0, 0, (0,)), 0)
        assignment.place(Task(1, 0, (0,)), 0)
        with pytest.raises(ValueError):
            assignment.validate_capacity()

    def test_empty_assignment_is_fully_local(self):
        assert Assignment(1, 1).locality_percent() == 100.0

    def test_task_validation(self):
        with pytest.raises(ValueError):
            Task(0, 0, ())
        with pytest.raises(ValueError):
            Task(0, 0, (1, 1))

    def test_load_helpers(self):
        assert load_percent(250, 100, 4) == pytest.approx(62.5)  # paper's example
        assert tasks_for_load(62.5, 100, 4) == 250
        assert tasks_for_load(100, 25, 2) == 50


class TestMaxMatchingScheduler:
    def test_matches_count(self):
        tasks = simple_tasks()
        scheduler = MaxMatchingScheduler()
        assignment = scheduler.assign(tasks, node_count=4, slots_per_node=2)
        assert assignment.local_count == maximum_matching_count(tasks, 4, 2)
        assignment.validate_capacity()

    def test_all_tasks_assigned(self):
        tasks = simple_tasks()
        assignment = MaxMatchingScheduler().assign(tasks, 4, 2)
        assert assignment.assigned_count == len(tasks)

    def test_overload_rejected(self):
        tasks = [Task(i, 0, (0,)) for i in range(3)]
        with pytest.raises(ValueError):
            MaxMatchingScheduler().assign(tasks, 1, 2)

    def test_empty(self):
        assert MaxMatchingScheduler().assign([], 2, 2).assigned_count == 0


class TestDelayScheduler:
    def test_all_assigned_within_capacity(self):
        rng = np.random.default_rng(0)
        tasks = generate_tasks(make_code("pentagon"), 45, 25, rng)
        assignment = DelayScheduler().assign(tasks, 25, 2, rng)
        assert assignment.assigned_count == 45
        assignment.validate_capacity()

    def test_seeded_reproducibility(self):
        tasks = simple_tasks()
        first = DelayScheduler().assign(tasks, 4, 2, np.random.default_rng(9))
        second = DelayScheduler().assign(tasks, 4, 2, np.random.default_rng(9))
        assert first.placements == second.placements

    def test_never_beats_max_matching(self):
        rng = np.random.default_rng(1)
        for code_name in ("2-rep", "pentagon", "heptagon"):
            for seed in range(5):
                trial_rng = np.random.default_rng(seed)
                tasks = workload_for_load(code_name, 100, 25, 2, trial_rng)
                delayed = DelayScheduler().assign(tasks, 25, 2, trial_rng)
                optimum = maximum_matching_count(tasks, 25, 2)
                assert delayed.local_count <= optimum

    def test_full_locality_when_uncontended(self):
        # One task per node, trivially local everywhere.
        tasks = [Task(i, i, (i,)) for i in range(5)]
        assignment = DelayScheduler().assign(tasks, 5, 1, np.random.default_rng(2))
        assert assignment.locality_percent() == 100.0

    def test_forced_remote_when_node_has_no_data(self):
        # Two tasks, both on node 0 (capacity 1); node 1 holds nothing.
        tasks = [Task(0, 0, (0,)), Task(1, 0, (0,))]
        assignment = DelayScheduler(max_skips=2).assign(
            tasks, 2, 1, np.random.default_rng(3))
        assert assignment.local_count == 1
        assert assignment.remote_count == 1

    def test_overload_raises(self):
        tasks = [Task(i, 0, (0,)) for i in range(5)]
        with pytest.raises(DelaySchedulerError):
            DelayScheduler().assign(tasks, 2, 2, np.random.default_rng(0))


class TestPeelingScheduler:
    def test_all_assigned_within_capacity(self):
        rng = np.random.default_rng(4)
        tasks = generate_tasks(make_code("heptagon"), 60, 25, rng)
        assignment = PeelingScheduler().assign(tasks, 25, 4, rng)
        assert assignment.assigned_count == 60
        assignment.validate_capacity()

    def test_never_beats_max_matching(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            tasks = workload_for_load("pentagon", 100, 25, 4, rng)
            peeled = PeelingScheduler().assign(tasks, 25, 4, rng)
            assert peeled.local_count <= maximum_matching_count(tasks, 25, 4)

    def test_forced_moves_taken_first(self):
        # Task 1 has a single feasible node; a naive FIFO would strand it.
        tasks = [Task(0, 0, (0, 1)), Task(1, 1, (0,))]
        assignment = PeelingScheduler().assign(tasks, 2, 1, np.random.default_rng(0))
        assert assignment.locality_percent() == 100.0
        assert assignment.placements[1] == 0

    def test_improves_on_delay_for_pentagon_on_average(self):
        """The Fig. 3 claim: peeling beats delay scheduling at mu=4."""
        delay_total, peel_total = 0, 0
        for seed in range(12):
            rng = np.random.default_rng(seed)
            tasks = workload_for_load("pentagon", 100, 25, 4, rng)
            delay_total += DelayScheduler().assign(
                tasks, 25, 4, np.random.default_rng(seed + 500)).local_count
            peel_total += PeelingScheduler().assign(
                tasks, 25, 4, np.random.default_rng(seed + 900)).local_count
        assert peel_total >= delay_total

    def test_stripe_aware_flag(self):
        rng = np.random.default_rng(8)
        tasks = workload_for_load("pentagon", 75, 25, 2, rng)
        aware = PeelingScheduler(stripe_aware=True).assign(
            tasks, 25, 2, np.random.default_rng(1))
        oblivious = PeelingScheduler(stripe_aware=False).assign(
            tasks, 25, 2, np.random.default_rng(1))
        aware.validate_capacity()
        oblivious.validate_capacity()


class TestSchedulerFactory:
    def test_make_by_name(self):
        assert isinstance(make_scheduler("delay"), DelayScheduler)
        assert isinstance(make_scheduler("max-matching"), MaxMatchingScheduler)
        assert isinstance(make_scheduler("peeling"), PeelingScheduler)

    def test_kwargs_forwarded(self):
        scheduler = make_scheduler("delay", max_skips=7)
        assert scheduler.max_skips == 7

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_scheduler("fifo")
