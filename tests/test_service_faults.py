"""Fault-injection harness: spec grammar, seeded determinism, the
datanode-side arm, and the checksum substrate it leans on
(per-block CRCs + typed ``CorruptBlockError`` on the MiniHDFS read
path)."""

import threading
import time

import numpy as np
import pytest

from repro.cluster import (
    BlockId,
    ClusterTopology,
    CorruptBlockError,
    DataNode,
    MiniHDFS,
    block_checksum,
)
from repro.core import UnrecoverableStripeError
from repro.service.faults import (
    Fault,
    FaultArm,
    FaultPlan,
    parse_fault,
    parse_fault_plan,
)


class TestGrammar:
    def test_kill_at_time(self):
        fault = parse_fault("kill:dn2@t=2")
        assert (fault.action, fault.target, fault.at_time) == ("kill", 2,
                                                               2.0)
        assert fault.on_request is None

    def test_slow_with_options(self):
        fault = parse_fault("slow:dn1@k=3,delay=0.2,duration=5")
        assert fault.action == "slow"
        assert (fault.on_request, fault.delay, fault.duration) == (3, 0.2,
                                                                   5.0)

    def test_random_target(self):
        assert parse_fault("corrupt:random@k=10").target is None

    def test_describe_roundtrips(self):
        for spec in ("kill:dn2@t=2", "hang:dn0@k=5",
                     "slow:dn1@t=1,delay=0.2",
                     "slow:dn1@k=3,delay=0.2,duration=5",
                     "corrupt:random@k=10"):
            assert parse_fault(parse_fault(spec).describe()) == \
                parse_fault(spec)

    @pytest.mark.parametrize("bad", [
        "kill:dn2",                  # no trigger
        "kill@t=2",                  # no target
        "explode:dn1@t=1",           # unknown action
        "kill:node2@t=1",            # malformed target
        "kill:dn1@t=1,k=2",          # two triggers
        "kill:dn1@x=2",              # unknown key
        "kill:dn1@t=soon",           # non-numeric
        "slow:dn1@k=1.5",            # fractional request count
    ])
    def test_rejected_specs(self, bad):
        with pytest.raises(ValueError):
            parse_fault(bad)

    def test_plan_parses_semicolon_list(self):
        plan = parse_fault_plan("kill:dn0@t=1; slow:dn1@k=2,delay=0.1",
                                seed=9)
        assert len(plan.faults) == 2
        assert plan.seed == 9

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            Fault(action="kill", target=0)          # no trigger
        with pytest.raises(ValueError):
            Fault(action="kill", target=0, at_time=-1.0)
        with pytest.raises(ValueError):
            Fault(action="kill", target=0, on_request=0)


class TestDeterminism:
    def test_random_targets_reproduce_with_seed(self):
        plan = parse_fault_plan("kill:random@t=1;corrupt:random@k=3",
                                seed=11)
        first = plan.resolve(range(8))
        assert plan.resolve(range(8)) == first
        assert FaultPlan(plan.faults, seed=11).resolve(range(8)) == first

    def test_explicit_target_must_exist(self):
        plan = parse_fault_plan("kill:dn7@t=1")
        with pytest.raises(ValueError, match="dn7"):
            plan.resolve(range(4))

    def test_resolve_groups_by_node(self):
        plan = parse_fault_plan("slow:dn1@t=0,delay=0.1;kill:dn1@t=2")
        bound = plan.resolve(range(3))
        assert set(bound) == {1}
        assert len(bound[1]) == 2


def _loaded_store(blocks=4, size=256):
    store = DataNode(0)
    rng = np.random.default_rng(5)
    for index in range(blocks):
        data = rng.integers(0, 256, size=size, dtype=np.uint8)
        store.put(BlockId("f", 0, index), data)
    return store


class TestFaultArm:
    def test_slow_applies_delay_after_kth_request(self):
        arm = FaultArm(_loaded_store(), seed=0)
        arm.arm([Fault(action="slow", target=0, on_request=2,
                       delay=0.15)])
        start = time.perf_counter()
        arm.before_request("get", {})
        assert time.perf_counter() - start < 0.1     # 1st request: free
        start = time.perf_counter()
        arm.before_request("get", {})
        assert time.perf_counter() - start >= 0.15   # 2nd: slowed

    def test_slow_duration_expires(self):
        arm = FaultArm(_loaded_store(), seed=0)
        arm.arm([Fault(action="slow", target=0, on_request=1,
                       delay=0.05, duration=0.2)])
        arm.before_request("get", {})
        time.sleep(0.3)
        start = time.perf_counter()
        arm.before_request("get", {})
        assert time.perf_counter() - start < 0.04    # back to full speed

    def test_control_path_requests_never_trigger(self):
        arm = FaultArm(_loaded_store(), seed=0)
        arm.arm([Fault(action="slow", target=0, on_request=1, delay=0.2)])
        start = time.perf_counter()
        arm.before_request("status", {})
        arm.before_request("fault", {})
        assert time.perf_counter() - start < 0.1
        assert arm.snapshot()["pending"]             # still armed

    def test_hang_blocks_requests_and_reports(self):
        arm = FaultArm(_loaded_store(), seed=0)
        arm.arm([Fault(action="hang", target=0, on_request=1)])
        blocked = threading.Thread(
            target=arm.before_request, args=("get", {}), daemon=True)
        blocked.start()
        blocked.join(timeout=0.5)
        assert blocked.is_alive()                    # never answers again
        assert arm.hung

    def test_corrupt_is_deterministic_and_checksum_detectable(self):
        damaged = []
        for _ in range(2):
            store = _loaded_store()
            arm = FaultArm(store, seed=21)
            arm.arm([Fault(action="corrupt", target=0, on_request=1)])
            arm.before_request("get", {})
            bad = [block for block in store.block_ids()
                   if store.current_checksum(block)
                   != store.checksum(block)]
            assert len(bad) == 1                     # exactly one block hit
            with pytest.raises(CorruptBlockError):
                store.get(bad[0], verify=True)
            damaged.append(bad[0])
        assert damaged[0] == damaged[1]              # same seed, same block


class TestChecksumSubstrate:
    """Satellite: MiniHDFS verifies per-block CRCs on read and degrades
    past silent corruption instead of serving garbage."""

    def test_block_checksum_matches_store(self):
        store = DataNode(3)
        data = np.arange(64, dtype=np.uint8)
        crc = store.put(BlockId("f", 0, 0), data)
        assert crc == block_checksum(data)
        assert store.checksum(BlockId("f", 0, 0)) == crc
        assert store.current_checksum(BlockId("f", 0, 0)) == crc

    def test_corrupt_keeps_recorded_checksum(self):
        store = DataNode(3)
        block = BlockId("f", 0, 0)
        recorded = store.put(block, np.arange(64, dtype=np.uint8))
        store.corrupt(block, offset=5)
        assert store.checksum(block) == recorded             # lie intact
        assert store.current_checksum(block) != recorded     # rot visible
        with pytest.raises(CorruptBlockError) as excinfo:
            store.get(block, verify=True)
        assert excinfo.value.node_id == 3
        assert excinfo.value.block == block

    def test_minihdfs_read_degrades_past_corruption(self):
        fs = MiniHDFS(ClusterTopology.flat(6), block_bytes=512, seed=4)
        data = bytes(np.random.default_rng(1).integers(
            0, 256, size=9 * 512 * 2, dtype=np.uint8))
        fs.write_file("f", data, "pentagon")
        # Rot one replica of one block on-disk, checksum preserved.
        stripe = fs.namenode.file("f").stripes[0]
        block = stripe.block_id(0)
        victim = stripe.slot_nodes[stripe.code.layout.symbols[0]
                                   .replicas[0]]
        fs.datanodes[victim].corrupt(block, offset=17)
        assert fs.read_file("f") == data                     # degraded, right
        assert fs.read_block(block) == data[:512]

    def test_minihdfs_raises_when_all_copies_corrupt(self):
        fs = MiniHDFS(ClusterTopology.flat(3), block_bytes=256, seed=4)
        data = b"x" * 256
        fs.write_file("f", data, "3-rep")
        stripe = fs.namenode.file("f").stripes[0]
        block = stripe.block_id(0)
        for slot in stripe.code.layout.symbols[0].replicas:
            fs.datanodes[stripe.slot_nodes[slot]].corrupt(block)
        with pytest.raises(UnrecoverableStripeError):
            fs.read_file("f")
