"""Equivalence tests for the performance subsystem.

The perf overhaul must change *nothing* observable except wall time:

1. the packed-table batched encode path is byte-identical to the scalar
   ``GF256.combine`` reference for every registered code;
2. the vectorised ``matmul`` agrees with a scalar ``gf_mul`` reference;
3. ``can_recover_many`` / ``can_recover_masks`` agree with per-pattern
   ``can_recover`` and with a from-scratch rank-test reference on
   exhaustive small patterns;
4. ``GF256.asarray`` keeps its zero-copy/read-only and writable-copy
   contracts;
5. the vectorised Monte-Carlo simulators still agree with the analytic
   chains (seeded, within the suite's statistical tolerance).
"""

import itertools

import numpy as np
import pytest

from repro.core import make_code
from repro.gf import (
    GF256,
    PACKED_MIN_BYTES,
    BatchedLinearMap,
    gf_mul,
    matmul,
    matrix_rank,
)
from repro.gf.kernels import _u16_view
from repro.reliability import (
    ReliabilityParams,
    group_model,
    relative_error,
    simulate_chain_mttd,
    simulate_group_mttd,
)
from repro.reliability.models import group_chain, initial_state

ALL_CODES = [
    "2-rep", "3-rep",
    "pentagon", "heptagon",
    "(4,3) RAID+m", "(10,9) RAID+m", "(12,11) RAID+m",
    "rs(6,4)", "rs(14,10)",
    "pentagon-local", "heptagon-local",
]

#: Codes small enough for exhaustive failure-pattern sweeps.
SMALL_CODES = ["3-rep", "pentagon", "(4,3) RAID+m", "rs(6,4)", "heptagon-local"]


def scalar_reference_encode(code, data):
    """The retired per-symbol, per-coefficient encode loop."""
    from repro.core.layout import SymbolKind

    buffers = [GF256.asarray(b) for b in data]
    size = len(buffers[0])
    out = []
    for symbol in code.layout.symbols:
        if symbol.kind is SymbolKind.DATA:
            column = int(np.argmax(np.asarray(symbol.coefficients) != 0))
            out.append(buffers[column].copy())
        else:
            out.append(GF256.combine(symbol.coefficients, buffers, length=size))
    return out


class TestBatchedEncodeBitIdentical:
    @pytest.mark.parametrize("code_name", ALL_CODES)
    def test_packed_path_matches_scalar_reference(self, code_name):
        """Large even blocks take the packed-table path; compare bytes."""
        code = make_code(code_name)
        rng = np.random.default_rng(7)
        size = PACKED_MIN_BYTES
        data = [rng.integers(0, 256, size, dtype=np.uint8)
                for _ in range(code.k)]
        expected = scalar_reference_encode(code, data)
        actual = code.encode(data)
        assert len(actual) == len(expected)
        for index, (a, b) in enumerate(zip(actual, expected)):
            assert np.array_equal(a, b), f"{code_name} symbol {index}"

    @pytest.mark.parametrize("code_name", ["heptagon-local", "rs(14,10)"])
    def test_odd_and_small_blocks_fall_back_identically(self, code_name):
        code = make_code(code_name)
        rng = np.random.default_rng(8)
        for size in (24, 1023, PACKED_MIN_BYTES + 1):
            data = [rng.integers(0, 256, size, dtype=np.uint8)
                    for _ in range(code.k)]
            expected = scalar_reference_encode(code, data)
            for a, b in zip(code.encode(data), expected):
                assert np.array_equal(a, b)

    @pytest.mark.parametrize("code_name", ["pentagon", "heptagon-local", "rs(14,10)"])
    def test_decode_roundtrip_through_packed_kernels(self, code_name):
        code = make_code(code_name)
        rng = np.random.default_rng(9)
        data = [rng.integers(0, 256, PACKED_MIN_BYTES, dtype=np.uint8)
                for _ in range(code.k)]
        blocks = code.encode(data)
        failed = set(range(code.fault_tolerance))
        available = {i: blocks[i]
                     for i in code.layout.surviving_symbols(failed)}
        for expected, actual in zip(data, code.decode_data(available)):
            assert np.array_equal(expected, actual)

    def test_kernel_handles_unaligned_views(self):
        kernel = BatchedLinearMap([[3, 7], [29, 1]])
        rng = np.random.default_rng(10)
        backing = rng.integers(0, 256, 2 * PACKED_MIN_BYTES + 1, dtype=np.uint8)
        buffers = [backing[1:PACKED_MIN_BYTES + 1],        # odd start offset
                   backing[PACKED_MIN_BYTES + 1:]]
        out = kernel.apply(buffers)
        for r, row in enumerate([[3, 7], [29, 1]]):
            assert np.array_equal(out[r], GF256.combine(row, buffers))


class TestVectorisedMatmul:
    def test_matches_scalar_product(self):
        rng = np.random.default_rng(11)
        left = rng.integers(0, 256, (5, 7), dtype=np.uint8)
        right = rng.integers(0, 256, (7, 9), dtype=np.uint8)
        product = matmul(left, right)
        for i in range(5):
            for j in range(9):
                expected = 0
                for t in range(7):
                    expected ^= gf_mul(int(left[i, t]), int(right[t, j]))
                assert product[i, j] == expected

    def test_wide_rhs_routes_through_packed_kernel(self):
        rng = np.random.default_rng(12)
        left = rng.integers(0, 256, (3, 4), dtype=np.uint8)
        right = rng.integers(0, 256, (4, PACKED_MIN_BYTES), dtype=np.uint8)
        product = matmul(left, right)
        for r in range(3):
            assert np.array_equal(
                product[r], GF256.combine(left[r], list(right)))


class TestDecodabilityEngine:
    @pytest.mark.parametrize("code_name", SMALL_CODES)
    def test_bulk_agrees_with_rank_reference_exhaustively(self, code_name):
        """Every pattern up to tolerance + 2: bulk == cached == rank test."""
        code = make_code(code_name)
        reference = make_code(code_name)   # fresh instance, per-pattern path
        generator = code.layout.generator_matrix()
        top = min(code.length, code.fault_tolerance + 2)
        patterns = [
            subset
            for size in range(top + 1)
            for subset in itertools.combinations(range(code.length), size)
        ]
        bulk = code.can_recover_many(patterns)
        for pattern, verdict in zip(patterns, bulk):
            surviving = [
                s.index for s in code.layout.symbols
                if any(slot not in pattern for slot in s.replicas)
            ]
            exact = (len(surviving) >= code.k
                     and matrix_rank(generator[surviving]) == code.k)
            assert verdict == exact, f"{code_name} bulk {pattern}"
            assert reference.can_recover(pattern) == exact, \
                f"{code_name} scalar {pattern}"

    def test_masks_and_patterns_agree(self):
        code = make_code("pentagon-local")
        patterns = list(itertools.combinations(range(code.length), 3))
        masks = [sum(1 << s for s in p) for p in patterns]
        assert np.array_equal(code.can_recover_many(patterns),
                              code.can_recover_masks(masks))

    def test_cache_is_shared_across_query_styles(self):
        code = make_code("heptagon-local")
        assert code.can_recover({0, 1, 2, 3}) is False
        assert not code.can_recover_many([(0, 1, 2, 3)])[0]
        assert code._recover_cache[0b1111] is False

    def test_codes_wider_than_int64_masks(self):
        """Lengths > 63 slots must not overflow the bitmask plumbing."""
        code = make_code("rs(70,60)")
        assert code.length == 70
        assert code.can_recover([0, 65, 69])
        verdicts = code.can_recover_many([(), (0, 65), tuple(range(11))])
        assert verdicts.tolist() == [True, True, False]
        # Failure-dominated rates so 11 concurrent failures (loss)
        # arrive within a few dozen events per trial.
        measured = simulate_group_mttd(
            code, ReliabilityParams(node_mttf_hours=1.0,
                                    node_mttr_hours=100.0),
            np.random.default_rng(2), trials=40)
        assert measured > 0

    @pytest.mark.parametrize("code_name", ["pentagon", "heptagon-local"])
    def test_fatal_patterns_match_filtered_enumeration(self, code_name):
        code = make_code(code_name)
        size = code.fault_tolerance + 1
        expected = [
            frozenset(subset)
            for subset in itertools.combinations(range(code.length), size)
            if not make_code(code_name).can_recover(subset)
        ]
        assert code.fatal_patterns(size) == expected


class TestAsarrayContract:
    def test_bytes_input_is_zero_copy_and_read_only(self):
        raw = b"\x01\x02\x03\x04"
        array = GF256.asarray(raw)
        assert not array.flags.writeable
        assert not array.flags.owndata          # view over the caller's bytes
        with pytest.raises(ValueError):
            array[0] = 9

    def test_writable_requests_a_private_copy(self):
        raw = bytearray(b"\x01\x02\x03")
        array = GF256.asarray(raw, writable=True)
        array[0] = 77
        assert raw[0] == 1

    def test_ndarray_passthrough(self):
        source = np.arange(8, dtype=np.uint8)
        assert GF256.asarray(source) is source
        private = GF256.asarray(source, writable=True)
        private[0] = 55
        assert source[0] == 0

    def test_u16_view_respects_alignment(self):
        backing = np.zeros(9, dtype=np.uint8)
        view = _u16_view(backing[1:])
        assert view.dtype == np.uint16
        assert len(view) == 4


class TestSimulatorsStillAgree:
    FAST = ReliabilityParams(node_mttf_hours=100.0, node_mttr_hours=10.0)

    @pytest.mark.parametrize("code_name,trials", [
        ("3-rep", 600), ("heptagon-local", 400),
    ])
    def test_group_simulation_tracks_analytic_chain(self, code_name, trials):
        expected = group_model(code_name, self.FAST).mttdl_hours()
        measured = simulate_group_mttd(
            make_code(code_name), self.FAST, np.random.default_rng(3),
            trials=trials)
        assert relative_error(measured, expected) < 0.15

    def test_serial_repair_simulation(self):
        params = ReliabilityParams(node_mttf_hours=100.0, node_mttr_hours=10.0,
                                   repair="serial")
        expected = group_model("3-rep", params).mttdl_hours()
        measured = simulate_group_mttd(
            make_code("3-rep"), params, np.random.default_rng(4), trials=800)
        assert relative_error(measured, expected) < 0.15

    def test_chain_simulation_tracks_solver(self):
        chain = group_chain("pentagon", self.FAST)
        expected = chain.mean_time_to_absorption(initial_state("pentagon"))
        measured = simulate_chain_mttd(
            chain, initial_state("pentagon"), np.random.default_rng(5),
            trials=2000)
        assert relative_error(measured, expected) < 0.1

    def test_event_budget_still_enforced(self):
        with pytest.raises(RuntimeError):
            simulate_group_mttd(
                make_code("heptagon-local"),
                ReliabilityParams(node_mttf_hours=1e9, node_mttr_hours=1.0),
                np.random.default_rng(6), trials=50, max_events=1000)
