"""Tests for the locality workload generators."""

import numpy as np
import pytest

from repro.core import make_code
from repro.workloads import generate_tasks, stripe_node_sample, workload_for_load


class TestStripeSample:
    def test_distinct_nodes(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            nodes = stripe_node_sample(rng, 25, 7)
            assert len(set(nodes.tolist())) == 7

    def test_too_long_stripe_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            stripe_node_sample(rng, 5, 7)


class TestGenerateTasks:
    def test_task_count_exact(self):
        rng = np.random.default_rng(1)
        tasks = generate_tasks(make_code("pentagon"), 23, 25, rng)
        assert len(tasks) == 23
        assert [t.index for t in tasks] == list(range(23))

    def test_zero_tasks(self):
        rng = np.random.default_rng(1)
        assert generate_tasks(make_code("2-rep"), 0, 25, rng) == []

    def test_negative_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            generate_tasks(make_code("2-rep"), -1, 25, rng)

    def test_replication_candidates(self):
        rng = np.random.default_rng(2)
        for name, replicas in (("2-rep", 2), ("3-rep", 3)):
            tasks = generate_tasks(make_code(name), 30, 25, rng)
            for task in tasks:
                assert len(task.candidates) == replicas
                assert len(set(task.candidates)) == replicas

    def test_pentagon_stripe_structure(self):
        """Each full pentagon stripe: 9 tasks confined to 5 nodes,
        every node endpoint of 3 or 4 tasks (Fig. 2's right degrees)."""
        rng = np.random.default_rng(3)
        tasks = generate_tasks(make_code("pentagon"), 18, 25, rng)
        for stripe in (0, 1):
            stripe_tasks = [t for t in tasks if t.stripe == stripe]
            assert len(stripe_tasks) == 9
            nodes = set()
            for task in stripe_tasks:
                assert len(task.candidates) == 2
                nodes.update(task.candidates)
            assert len(nodes) == 5
            degrees = sorted(
                sum(1 for t in stripe_tasks if node in t.candidates)
                for node in nodes
            )
            assert degrees == [3, 3, 4, 4, 4]

    def test_heptagon_stripe_structure(self):
        rng = np.random.default_rng(4)
        tasks = generate_tasks(make_code("heptagon"), 20, 25, rng)
        nodes = set()
        for task in tasks:
            nodes.update(task.candidates)
        assert len(nodes) == 7
        degrees = sorted(
            sum(1 for t in tasks if node in t.candidates) for node in nodes
        )
        assert degrees == [5, 5, 6, 6, 6, 6, 6]

    def test_heptagon_local_tasks_have_two_candidates(self):
        rng = np.random.default_rng(5)
        tasks = generate_tasks(make_code("heptagon-local"), 40, 25, rng)
        assert len(tasks) == 40
        assert all(len(t.candidates) == 2 for t in tasks)

    def test_rs_single_candidate(self):
        rng = np.random.default_rng(6)
        tasks = generate_tasks(make_code("rs(14,10)"), 10, 25, rng)
        assert all(len(t.candidates) == 1 for t in tasks)

    def test_partial_stripe_subset(self):
        rng = np.random.default_rng(7)
        tasks = generate_tasks(make_code("heptagon"), 5, 25, rng)
        assert len(tasks) == 5
        assert all(t.stripe == 0 for t in tasks)

    def test_shuffle_preserves_multiset(self):
        rng = np.random.default_rng(8)
        plain = generate_tasks(make_code("pentagon"), 18, 25, rng)
        rng2 = np.random.default_rng(8)
        shuffled = generate_tasks(make_code("pentagon"), 18, 25, rng2, shuffle=True)
        assert sorted(t.candidates for t in plain) == sorted(
            t.candidates for t in shuffled
        )
        assert [t.index for t in shuffled] == list(range(18))


class TestWorkloadForLoad:
    def test_task_count_from_load(self):
        rng = np.random.default_rng(9)
        tasks = workload_for_load("2-rep", 100, 25, 2, rng)
        assert len(tasks) == 50
        tasks = workload_for_load("2-rep", 62.5, 100, 4, rng)
        assert len(tasks) == 250  # the paper's worked example
