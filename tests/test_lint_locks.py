"""Lock-discipline checker: blocking-under-lock and lock-order
inversions are caught in fixture daemons; the condition-wait pattern
and lock-free blocking stay clean."""

from __future__ import annotations

import textwrap

from repro.analysis import run_lint


def lint_source(tmp_path, source, rel="service/daemon.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return run_lint(root=tmp_path, paths=[tmp_path], checkers=["locks"],
                    context_paths=[])


def rules(report):
    return [(f.rule, f.line) for f in report.active]


class TestBlockingCalls:
    def test_sleep_under_lock(self, tmp_path):
        report = lint_source(tmp_path, """\
            import time
            import threading

            class Daemon:
                def __init__(self):
                    self._store_lock = threading.Lock()

                def bad(self):
                    with self._store_lock:
                        time.sleep(1.0)
        """)
        assert rules(report) == [("locks.blocking-call", 10)]

    def test_socket_io_under_lock(self, tmp_path):
        report = lint_source(tmp_path, """\
            import threading

            class Daemon:
                def __init__(self):
                    self._meta = threading.RLock()

                def bad(self, sock, payload):
                    with self._meta:
                        sock.sendall(payload)
        """)
        assert rules(report) == [("locks.blocking-call", 9)]

    def test_rpc_helper_under_stripe_lock(self, tmp_path):
        report = lint_source(tmp_path, """\
            class NameNode:
                def repair(self, key):
                    with self._stripe_lock(key):
                        return self._dn_call(0, "combine", {})
        """)
        assert rules(report) == [("locks.blocking-call", 4)]

    def test_nested_function_body_runs_under_the_lock(self, tmp_path):
        # the fetch-closure pattern: defined and called inside `with`
        report = lint_source(tmp_path, """\
            class NameNode:
                def repair(self, key, plan):
                    with self._stripe_lock(key):
                        def fetch(transfer):
                            return self._dn_call(1, "combine", {})
                        return plan(fetch)
        """)
        assert rules(report) == [("locks.blocking-call", 5)]

    def test_blocking_outside_lock_is_fine(self, tmp_path):
        report = lint_source(tmp_path, """\
            import time
            import threading

            class Daemon:
                def __init__(self):
                    self._store_lock = threading.Lock()

                def good(self, sock, payload):
                    with self._store_lock:
                        count = len(payload)
                    time.sleep(0.1)
                    sock.sendall(payload)
                    return count
        """)
        assert report.ok()

    def test_condition_wait_on_held_condition_is_exempt(self, tmp_path):
        report = lint_source(tmp_path, """\
            import threading

            class Coordinator:
                def __init__(self):
                    self._state = threading.Condition()

                def claim(self):
                    with self._state:
                        while True:
                            self._state.wait(0.1)
        """)
        assert report.ok()

    def test_wait_on_other_object_under_lock_is_flagged(self, tmp_path):
        report = lint_source(tmp_path, """\
            import threading

            class Daemon:
                def __init__(self):
                    self._meta = threading.RLock()

                def bad(self, proc):
                    with self._meta:
                        proc.wait()
        """)
        assert rules(report) == [("locks.blocking-call", 9)]

    def test_string_join_is_not_a_thread_join(self, tmp_path):
        report = lint_source(tmp_path, """\
            import threading

            class Daemon:
                def __init__(self):
                    self._meta = threading.RLock()

                def render(self, parts):
                    with self._meta:
                        return ", ".join(parts)
        """)
        assert report.ok()


class TestLockOrdering:
    INVERTED = """\
        import threading

        class Daemon:
            def __init__(self):
                self._meta = threading.RLock()
                self._store_lock = threading.Lock()

            def forward(self):
                with self._meta:
                    with self._store_lock:
                        return 1

            def backward(self):
                with self._store_lock:
                    with self._meta:
                        return 2
    """

    def test_inverted_pair_flagged_at_both_sites(self, tmp_path):
        report = lint_source(tmp_path, self.INVERTED)
        found = rules(report)
        assert found == [("locks.lock-order", 10),
                         ("locks.lock-order", 15)]

    def test_consistent_order_is_fine(self, tmp_path):
        report = lint_source(tmp_path, """\
            import threading

            class Daemon:
                def __init__(self):
                    self._meta = threading.RLock()
                    self._store_lock = threading.Lock()

                def one(self):
                    with self._meta:
                        with self._store_lock:
                            return 1

                def two(self):
                    with self._meta:
                        with self._store_lock:
                            return 2
        """)
        assert report.ok()

    def test_inversion_through_helper_call(self, tmp_path):
        # one level of propagation: helper() acquires _meta, and is
        # called under _store_lock while someone else nests the
        # opposite way
        report = lint_source(tmp_path, """\
            import threading

            class Daemon:
                def __init__(self):
                    self._meta = threading.RLock()
                    self._store_lock = threading.Lock()

                def helper(self):
                    with self._meta:
                        return 1

                def backward(self):
                    with self._store_lock:
                        return self.helper()

                def forward(self):
                    with self._meta:
                        with self._store_lock:
                            return 2
        """)
        assert [rule for rule, _ in rules(report)] == [
            "locks.lock-order", "locks.lock-order"]


class TestAsyncRules:
    def test_time_sleep_in_async_def(self, tmp_path):
        report = lint_source(tmp_path, """\
            import time

            class Daemon:
                async def bad(self):
                    time.sleep(1.0)
        """)
        assert rules(report) == [("locks.async-blocking", 5)]

    def test_socket_io_in_async_def(self, tmp_path):
        report = lint_source(tmp_path, """\
            class Daemon:
                async def bad(self, sock, payload):
                    sock.sendall(payload)
        """)
        assert rules(report) == [("locks.async-blocking", 3)]

    def test_sync_send_frame_in_async_def(self, tmp_path):
        report = lint_source(tmp_path, """\
            from repro.net import send_frame

            class Daemon:
                async def bad(self, sock):
                    send_frame(sock, ("ping", None))
        """)
        assert rules(report) == [("locks.async-blocking", 5)]

    def test_awaited_calls_are_exempt(self, tmp_path):
        # await yields to the loop; arguments construct coroutines
        report = lint_source(tmp_path, """\
            import asyncio

            class Daemon:
                async def good(self, conn):
                    await asyncio.sleep(1.0)
                    kind, data = await asyncio.wait_for(conn.recv(), 5.0)
                    await conn.send((kind, data))
        """)
        assert report.ok()

    def test_await_under_sync_lock(self, tmp_path):
        report = lint_source(tmp_path, """\
            import threading

            class Daemon:
                def __init__(self):
                    self._meta = threading.RLock()

                async def bad(self):
                    with self._meta:
                        await self.flush()
        """)
        assert rules(report) == [("locks.sync-lock-await", 9)]

    def test_await_under_async_lock_is_fine(self, tmp_path):
        report = lint_source(tmp_path, """\
            import asyncio

            class Daemon:
                def __init__(self):
                    self._turn_lock = asyncio.Lock()

                async def good(self, conn, reply):
                    async with self._turn_lock:
                        await conn.send(reply)
        """)
        assert report.ok()

    def test_blocking_under_async_lock_stalls_the_loop(self, tmp_path):
        # not a locks.blocking-call (no thread waits on an asyncio
        # lock) but still parks the whole loop
        report = lint_source(tmp_path, """\
            import asyncio
            import time

            class Daemon:
                def __init__(self):
                    self._send_lock = asyncio.Lock()

                async def bad(self):
                    async with self._send_lock:
                        time.sleep(0.5)
        """)
        assert rules(report) == [("locks.async-blocking", 10)]

    def test_nested_sync_def_is_not_async_context(self, tmp_path):
        report = lint_source(tmp_path, """\
            class Daemon:
                async def outer(self, sock):
                    def emit(payload):
                        sock.sendall(payload)
                    return emit
        """)
        assert report.ok()


class TestScope:
    BLOCKING = """\
        import time
        import threading

        class Daemon:
            def __init__(self):
                self._store_lock = threading.Lock()

            def bad(self):
                with self._store_lock:
                    time.sleep(1.0)
    """

    def test_distributed_module_is_in_scope(self, tmp_path):
        report = lint_source(tmp_path, self.BLOCKING,
                             rel="experiments/distributed.py")
        assert not report.ok()

    def test_net_module_is_in_scope(self, tmp_path):
        report = lint_source(tmp_path, self.BLOCKING,
                             rel="repro/net.py")
        assert not report.ok()

    def test_other_trees_are_out_of_scope(self, tmp_path):
        report = lint_source(tmp_path, self.BLOCKING,
                             rel="experiments/engine.py")
        assert report.ok()

    def test_waiver(self, tmp_path):
        report = lint_source(tmp_path, """\
            import time
            import threading

            class Daemon:
                def __init__(self):
                    self._store_lock = threading.Lock()

                def bad(self):
                    with self._store_lock:
                        time.sleep(1.0)  # lint: allow(locks.blocking-call): fixture
        """)
        assert report.ok()
        assert len(report.waived) == 1


class TestInterprocedural:
    def test_two_hop_lock_cycle(self, tmp_path):
        # neither function nests the locks directly: outer_a holds
        # _meta and reaches _store_lock through mid(); outer_b nests
        # the opposite way.  Only the transitive closure sees it.
        report = lint_source(tmp_path, """\
            import threading

            class Daemon:
                def __init__(self):
                    self._meta = threading.RLock()
                    self._store_lock = threading.Lock()

                def outer_a(self):
                    with self._meta:
                        return self.mid()

                def mid(self):
                    return self.leaf()

                def leaf(self):
                    with self._store_lock:
                        return 1

                def outer_b(self):
                    with self._store_lock:
                        with self._meta:
                            return 2
        """)
        found = rules(report)
        assert [rule for rule, _ in found] == [
            "locks.lock-order", "locks.lock-order"]
        # the call-edge finding names the chain through mid()
        messages = [f.message for f in report.active]
        assert any("mid" in message for message in messages)

    def test_propagated_blocking_through_helpers(self, tmp_path):
        # send() blocks two calls away; direct per-file rules cannot
        # see it, the closure can
        report = lint_source(tmp_path, """\
            import threading

            class Daemon:
                def __init__(self):
                    self._meta = threading.RLock()

                def bad(self, payload):
                    with self._meta:
                        self.notify(payload)

                def notify(self, payload):
                    self.push(payload)

                def push(self, payload):
                    self.sock.sendall(payload)
        """)
        found = rules(report)
        assert ("locks.blocking-call", 9) in found
        messages = [f.message for f in report.active]
        assert any("notify" in message for message in messages)

    def test_propagation_stops_at_async_callees(self, tmp_path):
        # a sync caller never runs an async def's body by calling it;
        # building the coroutine does not block
        report = lint_source(tmp_path, """\
            import threading

            class Daemon:
                def __init__(self):
                    self._meta = threading.RLock()

                def ok(self, payload):
                    with self._meta:
                        return self.emit(payload)

                async def emit(self, payload):
                    self.sock.sendall(payload)
        """)
        blocked = [r for r, _ in rules(report)
                   if r == "locks.blocking-call"]
        assert blocked == []

    def test_condition_wait_exemption_survives_propagation(self,
                                                           tmp_path):
        report = lint_source(tmp_path, """\
            import threading

            class Coordinator:
                def __init__(self):
                    self._state = threading.Condition()

                def outer(self):
                    with self._state:
                        return self.park()

                def park(self):
                    self._state.wait(0.1)
        """)
        assert report.ok()
