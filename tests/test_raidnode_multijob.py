"""Tests for the RaidNode lifecycle and the multi-job workload driver."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterTopology,
    MiniHDFS,
    RaidNode,
    RaidPolicy,
)
from repro.mapreduce import (
    MiB,
    MRSimConfig,
    poisson_job_stream,
    run_job_stream,
    sustained_load_sweep,
)

BLOCK = 256


def fresh_fs(node_count=25, seed=0):
    return MiniHDFS(ClusterTopology.flat(node_count), block_bytes=BLOCK,
                    seed=seed)


def payload(blocks, seed=1):
    rng = np.random.default_rng(seed)
    return bytes(rng.integers(0, 256, BLOCK * blocks, dtype=np.uint8))


class TestRaidNode:
    def test_raid_file_reclaims_space(self):
        """3-rep -> pentagon conversion saves (3.0 - 2.22) x data bytes."""
        fs = fresh_fs()
        data = payload(9)
        fs.write_file("warehouse/t1", data, "3-rep")
        raid = RaidNode(fs)
        reclaimed = raid.raid_file("warehouse/t1", "pentagon")
        assert reclaimed == (27 - 20) * BLOCK
        assert fs.namenode.file("warehouse/t1").code_name == "pentagon"
        assert fs.read_file("warehouse/t1") == data

    def test_raid_is_idempotent(self):
        fs = fresh_fs()
        fs.write_file("f", payload(9), "pentagon")
        assert RaidNode(fs).raid_file("f", "pentagon") == 0

    def test_old_blocks_deleted(self):
        fs = fresh_fs()
        fs.write_file("f", payload(9), "3-rep")
        stored_before = fs.stored_bytes()
        RaidNode(fs).raid_file("f", "pentagon")
        assert fs.stored_bytes() == stored_before - 7 * BLOCK

    def test_policy_table(self):
        raid = RaidNode(fresh_fs(), [
            RaidPolicy("warehouse/", "pentagon"),
            RaidPolicy("archive/", "rs(14,10)"),
        ])
        assert raid.policy_for("warehouse/t1").target_code == "pentagon"
        assert raid.policy_for("archive/x").target_code == "rs(14,10)"
        assert raid.policy_for("tmp/scratch") is None

    def test_raid_all_applies_policies(self):
        fs = fresh_fs()
        contents = {
            "warehouse/a": payload(9, seed=2),
            "warehouse/b": payload(18, seed=3),
            "tmp/scratch": payload(2, seed=4),
        }
        for name, data in contents.items():
            fs.write_file(name, data, "3-rep")
        raid = RaidNode(fs, [RaidPolicy("warehouse/", "pentagon")])
        report = raid.raid_all()
        assert sorted(report.raided) == ["warehouse/a", "warehouse/b"]
        assert report.skipped == ["tmp/scratch"]
        assert report.bytes_reclaimed == (27 - 20) * BLOCK * 3  # 3 stripes
        assert raid.verify_all(contents)

    def test_min_replication_guard(self):
        fs = fresh_fs()
        fs.write_file("warehouse/hot", payload(9), "2-rep")
        raid = RaidNode(fs, [
            RaidPolicy("warehouse/", "pentagon", min_replication_to_raid=3),
        ])
        report = raid.raid_all()
        assert report.raided == []
        assert fs.namenode.file("warehouse/hot").code_name == "2-rep"

    def test_missing_block_report_and_fix(self):
        fs = fresh_fs()
        data = payload(9, seed=5)
        fs.write_file("f", data, "pentagon")
        raid = RaidNode(fs)
        assert raid.missing_block_report() == {}
        stripe = fs.namenode.file("f").stripes[0]
        fs.fail_node(stripe.slot_nodes[0], permanent=True)
        report = raid.missing_block_report()
        assert report == {"f": 4}
        fixed = raid.scan_and_fix()
        assert fixed.stripes_fixed == 1
        assert fixed.repair_bytes == 4 * BLOCK
        assert fs.read_file("f") == data

    def test_scan_with_no_failures_is_noop(self):
        fs = fresh_fs()
        fs.write_file("f", payload(9), "pentagon")
        report = RaidNode(fs).scan_and_fix()
        assert report.repair_bytes == 0

    def test_raid_through_degraded_read(self):
        """Raiding works even while a replica is down (degraded read path)."""
        fs = fresh_fs()
        data = payload(9, seed=6)
        fs.write_file("f", data, "3-rep")
        stripe = fs.namenode.file("f").stripes[0]
        fs.fail_node(stripe.slot_nodes[0])
        RaidNode(fs).raid_file("f", "pentagon")
        assert fs.read_file("f") == data


class TestMultiJob:
    CONFIG = MRSimConfig(node_count=25, map_slots=2, block_bytes=64 * MiB,
                         map_mean_s=20.0, map_sigma_s=1.0, heartbeat_s=1.0,
                         delay_s=3.0, reduce_base_s=2.0)

    def test_poisson_stream_shapes(self):
        rng = np.random.default_rng(0)
        jobs = poisson_job_stream(rng, 10, 30.0, 25)
        assert len(jobs) == 10
        arrivals = [j.arrival_s for j in jobs]
        assert arrivals == sorted(arrivals)
        with pytest.raises(ValueError):
            poisson_job_stream(rng, 0, 30.0, 25)

    def test_stream_accumulates_queueing(self):
        rng = np.random.default_rng(1)
        # Back-to-back arrivals: later jobs must wait.
        jobs = [poisson_job_stream(rng, 1, 1.0, 25)[0] for _ in range(4)]
        result = run_job_stream("2-rep", jobs, self.CONFIG,
                                np.random.default_rng(2))
        assert result.jobs == 4
        assert result.mean_wait_s > 0
        assert result.makespan_s > result.mean_job_time_s

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            run_job_stream("2-rep", [], self.CONFIG, np.random.default_rng(0))

    def test_sustained_load_sweep_orderings(self):
        rows = sustained_load_sweep(("2-rep", "heptagon"), self.CONFIG,
                                    utilisations=(0.5, 0.9), job_count=6)
        by = {(r["code"], r["utilisation"]): r for r in rows}
        for u in (0.5, 0.9):
            # Coded scheme keeps lower locality at every utilisation...
            assert (by[("heptagon", u)]["locality %"]
                    <= by[("2-rep", u)]["locality %"] + 1.0)
            # ...which stretches its jobs (the queueing itself is too
            # noisy to order with 6 Poisson arrivals per cell).
            assert (by[("heptagon", u)]["job time (s)"]
                    > by[("2-rep", u)]["job time (s)"])
            assert by[("heptagon", u)]["queue wait (s)"] >= 0.0
