"""Framework-level tests for `repro lint`: waivers, JSON, CLI, and the
meta-test asserting the shipped tree is clean."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro import cli
from repro.analysis import registered_checkers, run_lint
from repro.analysis.core import (LINT_SCHEMA_VERSION, Finding, SourceFile,
                                 _parse_waivers)


def write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def lint(tmp_path, checkers=None):
    return run_lint(root=tmp_path, paths=[tmp_path], checkers=checkers,
                    context_paths=[])


BAD_EXPERIMENT = """\
    import random

    def draw():
        return random.random()
"""


class TestWaiverParsing:
    def test_same_line_waiver(self):
        waivers = _parse_waivers(
            ["x = 1  # lint: allow(determinism.global-rng): because"])
        assert len(waivers) == 1
        waiver = waivers[0]
        assert waiver.rules == ("determinism.global-rng",)
        assert waiver.justification == "because"
        assert not waiver.standalone
        assert waiver.covers("determinism.global-rng")
        assert not waiver.covers("determinism.wall-clock")

    def test_multiple_rules_one_comment(self):
        waivers = _parse_waivers(
            ["y()  # lint: allow(locks.blocking-call, rpc.unused-op)"])
        assert waivers[0].rules == ("locks.blocking-call", "rpc.unused-op")
        assert waivers[0].justification is None
        assert waivers[0].covers("rpc.unused-op")

    def test_checker_prefix_waives_every_rule(self):
        waivers = _parse_waivers(["z()  # lint: allow(locks): all of it"])
        assert waivers[0].covers("locks.blocking-call")
        assert waivers[0].covers("locks.lock-order")
        assert not waivers[0].covers("rpc.unused-op")
        # prefix match is on dotted boundaries, not substrings
        assert not waivers[0].covers("locksmith.pick")

    def test_standalone_comment_covers_next_line(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            # lint: allow(some.rule): long call below
            value = 1
        """)
        entry = SourceFile(path, tmp_path)
        assert entry.waiver_for("some.rule", 2) is not None
        assert entry.waiver_for("some.rule", 3) is None

    def test_inline_waiver_does_not_leak_to_next_line(self, tmp_path):
        path = write(tmp_path, "mod.py", """\
            value = 1  # lint: allow(some.rule)
            other = 2
        """)
        entry = SourceFile(path, tmp_path)
        assert entry.waiver_for("some.rule", 1) is not None
        assert entry.waiver_for("some.rule", 2) is None


class TestWaiverApplication:
    def test_waived_finding_marked_not_dropped(self, tmp_path):
        write(tmp_path, "experiments/sweep.py", """\
            import random

            def draw():
                return random.random()  # lint: allow(determinism.global-rng): fixture
        """)
        report = lint(tmp_path, checkers=["determinism"])
        assert report.ok()
        assert len(report.waived) == 1
        finding = report.waived[0]
        assert finding.rule == "determinism.global-rng"
        assert finding.justification == "fixture"

    def test_waiver_for_other_rule_does_not_apply(self, tmp_path):
        write(tmp_path, "experiments/sweep.py", """\
            import random

            def draw():
                return random.random()  # lint: allow(determinism.wall-clock)
        """)
        report = lint(tmp_path, checkers=["determinism"])
        assert not report.ok()
        assert report.active[0].rule == "determinism.global-rng"


class TestReport:
    def test_json_schema(self, tmp_path):
        write(tmp_path, "experiments/sweep.py", BAD_EXPERIMENT)
        report = lint(tmp_path, checkers=["determinism"])
        payload = json.loads(report.to_json())
        assert payload["version"] == LINT_SCHEMA_VERSION
        assert payload["root"] == str(tmp_path)
        assert payload["checkers"] == ["determinism"]
        assert payload["counts"] == {"findings": 1, "active": 1,
                                     "waived": 0}
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "message",
                                "waived", "justification"}
        assert finding["path"] == "experiments/sweep.py"
        assert finding["line"] == 4
        assert finding["waived"] is False

    def test_text_format(self, tmp_path):
        write(tmp_path, "experiments/sweep.py", BAD_EXPERIMENT)
        report = lint(tmp_path, checkers=["determinism"])
        text = report.format_text()
        assert "experiments/sweep.py:4 determinism.global-rng" in text
        assert "1 active" in text

    def test_parse_error_is_a_finding(self, tmp_path):
        write(tmp_path, "broken.py", "def broken(:\n")
        report = lint(tmp_path)
        assert [f.rule for f in report.active] == ["lint.parse-error"]

    def test_findings_sorted_by_path_then_line(self):
        report_findings = [
            Finding("r", "b.py", 2, "m"),
            Finding("r", "a.py", 9, "m"),
            Finding("r", "a.py", 1, "m"),
        ]
        ordered = sorted(report_findings,
                         key=lambda f: (f.path, f.line, f.rule, f.message))
        assert [(f.path, f.line) for f in ordered] == [
            ("a.py", 1), ("a.py", 9), ("b.py", 2)]


class TestRegistryAndSelection:
    def test_all_four_checkers_registered(self):
        assert set(registered_checkers()) >= {
            "determinism", "picklability", "locks", "rpc"}

    def test_every_rule_is_prefixed_by_its_checker(self):
        for name, checker in registered_checkers().items():
            assert checker.rules, name
            for rule in checker.rules:
                assert rule.startswith(name + "."), rule

    def test_unknown_checker_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown checker"):
            lint(tmp_path, checkers=["nonesuch"])

    def test_checker_selection_limits_findings(self, tmp_path):
        write(tmp_path, "experiments/sweep.py", BAD_EXPERIMENT)
        report = lint(tmp_path, checkers=["picklability"])
        assert report.ok()


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "experiments/fine.py", "VALUE = 1\n")
        assert cli.main(["lint", str(tmp_path)]) == 0
        assert "0 active" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        write(tmp_path, "experiments/sweep.py", BAD_EXPERIMENT)
        with pytest.raises(SystemExit) as exc:
            cli.main(["lint", str(tmp_path)])
        assert exc.value.code == 1
        assert "determinism.global-rng" in capsys.readouterr().out

    def test_json_flag(self, tmp_path, capsys):
        write(tmp_path, "experiments/sweep.py", BAD_EXPERIMENT)
        with pytest.raises(SystemExit):
            cli.main(["lint", "--json", str(tmp_path)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["active"] == 1

    def test_rules_listing(self, capsys):
        assert cli.main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("determinism.global-rng", "picklability.lambda-callable",
                     "locks.blocking-call", "rpc.unknown-op"):
            assert rule in out

    def test_unknown_checker_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(["lint", "--checker", "nonesuch", str(tmp_path)])
        assert exc.value.code == 2
        assert "unknown checker" in capsys.readouterr().err


class TestShippedTree:
    def test_repro_lint_is_clean_on_the_shipped_tree(self):
        """The CI gate in test form: zero unwaived findings on main."""
        report = run_lint()
        assert report.ok(), "\n" + report.format_text()

    def test_shipped_waivers_all_carry_justifications(self):
        report = run_lint()
        for finding in report.waived:
            assert finding.justification, finding.format()


class TestWaiverPlacement:
    def test_stacked_standalone_waivers(self, tmp_path):
        write(tmp_path, "experiments/sweep.py", """\
            import random
            import time

            def draw():
                # lint: allow(determinism.global-rng): fixture
                # lint: allow(determinism.wall-clock): fixture
                return random.random() + time.time()
        """)
        report = lint(tmp_path, checkers=["determinism"])
        assert report.ok()
        assert {f.rule for f in report.waived} == {
            "determinism.global-rng", "determinism.wall-clock"}

    def test_standalone_waiver_skips_decorator_lines(self, tmp_path):
        # a waiver written above the decorators still covers the def
        path = write(tmp_path, "mod.py", """\
            # lint: allow(some.rule): covers the decorated def
            @property
            @staticmethod
            def thing():
                return 1
        """)
        entry = SourceFile(path, tmp_path)
        assert entry.waiver_for("some.rule", 4) is not None
        assert entry.waiver_for("some.rule", 5) is None


class TestParseCache:
    def test_rewritten_file_is_reparsed(self, tmp_path):
        from repro.analysis.core import Project
        write(tmp_path, "experiments/sweep.py", BAD_EXPERIMENT)
        first = Project(tmp_path, [tmp_path])
        assert lint(tmp_path, checkers=["determinism"]).active
        write(tmp_path, "experiments/sweep.py", "VALUE = 1\n")
        assert lint(tmp_path, checkers=["determinism"]).ok()
        second = Project(tmp_path, [tmp_path])
        assert first.files[0].tree is not second.files[0].tree

    def test_untouched_file_reuses_the_parse(self, tmp_path):
        from repro.analysis.core import Project
        write(tmp_path, "experiments/sweep.py", BAD_EXPERIMENT)
        first = Project(tmp_path, [tmp_path])
        second = Project(tmp_path, [tmp_path])
        assert first.files[0] is second.files[0]


class TestChangedScoping:
    def _git(self, root, *args):
        import subprocess
        subprocess.run(
            ["git", "-C", str(root), "-c", "user.email=t@t",
             "-c", "user.name=t", *args],
            check=True, capture_output=True)

    def test_changed_paths_sees_worktree_and_untracked(self, tmp_path):
        from repro.analysis import changed_paths
        self._git(tmp_path, "init", "-q")
        committed = write(tmp_path, "src/mod.py", "VALUE = 1\n")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        assert changed_paths(tmp_path) == []
        committed.write_text("VALUE = 2\n")
        fresh = write(tmp_path, "src/new.py", "OTHER = 3\n")
        write(tmp_path, "notes.txt", "not python\n")
        assert changed_paths(tmp_path) == [committed, fresh]

    def test_changed_paths_against_a_ref(self, tmp_path):
        from repro.analysis import changed_paths
        self._git(tmp_path, "init", "-q")
        write(tmp_path, "src/mod.py", "VALUE = 1\n")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "one")
        write(tmp_path, "src/mod.py", "VALUE = 2\n")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "two")
        assert changed_paths(tmp_path) == []
        assert changed_paths(tmp_path, base="HEAD~1") == [
            tmp_path / "src/mod.py"]

    def test_bad_ref_raises_value_error(self, tmp_path):
        from repro.analysis import changed_paths
        self._git(tmp_path, "init", "-q")
        with pytest.raises(ValueError, match="git"):
            changed_paths(tmp_path, base="no-such-ref")

    def test_empty_paths_scans_nothing(self, tmp_path):
        write(tmp_path, "experiments/sweep.py", BAD_EXPERIMENT)
        report = run_lint(root=tmp_path, paths=[], context_paths=[])
        assert report.ok()
        assert report.findings == []


class TestSarif:
    def test_sarif_shape_and_suppressions(self, tmp_path):
        write(tmp_path, "experiments/sweep.py", """\
            import random
            import time

            def draw():
                t = time.time()  # lint: allow(determinism.wall-clock): fixture
                return random.random() + t
        """)
        report = lint(tmp_path, checkers=["determinism"])
        sarif = json.loads(report.to_sarif())
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "determinism.global-rng" in rule_ids
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels["determinism.global-rng"] == "warning"
        assert levels["determinism.wall-clock"] == "note"
        (suppressed,) = [r for r in run["results"]
                         if r["ruleId"] == "determinism.wall-clock"]
        assert suppressed["suppressions"][0]["justification"] == "fixture"
        location = run["results"][0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"

    def test_cli_format_sarif(self, tmp_path, capsys):
        write(tmp_path, "experiments/sweep.py", BAD_EXPERIMENT)
        with pytest.raises(SystemExit) as exc:
            cli.main(["lint", "--format", "sarif", str(tmp_path)])
        assert exc.value.code == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["runs"][0]["results"]
