"""Tests for the (k+1, k) RAID+mirror comparison scheme."""

import itertools

import numpy as np
import pytest

from repro.core import (
    Code,
    RaidMirrorCode,
    UnrecoverableStripeError,
    execute_read_plan,
    verify_repair_plan,
)


def blocks_for(code, seed=0, size=32):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(code.k)]
    return code.encode(data)


class TestLayout:
    def test_10_9_dimensions_match_table1(self):
        code = RaidMirrorCode(9)
        assert code.name == "(10,9) RAID+m"
        assert code.k == 9
        assert code.length == 20
        assert code.total_blocks == 20
        assert code.storage_overhead == pytest.approx(20 / 9)

    def test_12_11_dimensions_match_table1(self):
        code = RaidMirrorCode(11)
        assert code.length == 24
        assert code.storage_overhead == pytest.approx(24 / 11)

    def test_one_block_per_node(self):
        assert RaidMirrorCode(9).layout.blocks_per_slot() == (1,) * 20

    def test_mirror_slot_pairing(self):
        code = RaidMirrorCode(4)
        assert code.mirror_slot(0) == 1
        assert code.mirror_slot(7) == 6
        assert code.symbol_of_slot(8) == 4

    def test_small_k_rejected(self):
        with pytest.raises(ValueError):
            RaidMirrorCode(1)


class TestFaultTolerance:
    def test_tolerates_three_failures(self):
        assert RaidMirrorCode(4).fault_tolerance == 3

    def test_fatal_quadruples_are_mirror_pair_pairs(self):
        code = RaidMirrorCode(4)
        fatal = code.fatal_patterns(4)
        # Fatal = choose 2 of the 5 mirror pairs: C(5,2) = 10 patterns.
        assert len(fatal) == 10
        for pattern in fatal:
            pairs = {slot // 2 for slot in pattern}
            assert len(pairs) == 2

    def test_closed_form_matches_rank(self):
        code = RaidMirrorCode(3)  # length 8: exhaustive check is feasible
        for size in range(1, 6):
            for subset in itertools.combinations(range(8), size):
                assert code.can_recover(subset) == Code.can_recover(code, subset)


class TestRepair:
    def test_single_loss_is_mirror_copy(self):
        code = RaidMirrorCode(9)
        plan = code.plan_node_repair([4])
        assert plan.network_blocks == 1
        assert plan.transfers[0].source_slot == 5

    def test_mirror_pair_loss_costs_k_plus_one_blocks(self):
        """Both copies of one symbol: XOR of the other k symbols + forward."""
        code = RaidMirrorCode(9)
        plan = code.plan_node_repair([2, 3])
        assert plan.network_blocks == 9 + 1

    def test_repairs_restore_bytes(self):
        code = RaidMirrorCode(4)
        blocks = blocks_for(code, seed=3)
        for failed in ([0], [3], [0, 1], [2, 5], [0, 1, 6], [4, 5, 9]):
            assert verify_repair_plan(code, blocks, code.plan_node_repair(failed))

    def test_two_pair_loss_raises(self):
        with pytest.raises(UnrecoverableStripeError):
            RaidMirrorCode(4).plan_node_repair([0, 1, 2, 3])


class TestDegradedRead:
    def test_costs_k_blocks_when_pair_down(self):
        """Paper Section 3.1: (10,9) RAID+m needs 9 blocks on the fly."""
        code = RaidMirrorCode(9)
        plan = code.plan_degraded_read(0, failed_slots={0, 1})
        assert plan.network_blocks == 9
        assert plan.degraded

    def test_returns_correct_bytes(self):
        code = RaidMirrorCode(5)
        blocks = blocks_for(code, seed=9)
        for symbol in range(code.k):
            failed = set(code.layout.symbols[symbol].replicas)
            plan = code.plan_degraded_read(symbol, failed)
            value = execute_read_plan(code, blocks, plan, failed)
            assert np.array_equal(value, blocks[symbol])

    def test_mirror_alive_is_single_copy(self):
        code = RaidMirrorCode(9)
        plan = code.plan_degraded_read(0, failed_slots={0})
        assert plan.network_blocks == 1
        assert not plan.degraded
