"""Tests for the stripe layout model."""

import numpy as np
import pytest

from repro.core import StripeLayout, Symbol, SymbolKind


def simple_layout():
    """2 data symbols mirrored across 3 slots + an XOR parity on slot 2."""
    return StripeLayout(
        "toy", k=2, length=3,
        symbols=(
            Symbol(0, SymbolKind.DATA, (0, 1), (1, 0), "d0"),
            Symbol(1, SymbolKind.DATA, (1, 2), (0, 1), "d1"),
            Symbol(2, SymbolKind.LOCAL_PARITY, (0, 2), (1, 1), "P"),
        ),
    )


class TestValidation:
    def test_valid_layout_builds(self):
        layout = simple_layout()
        assert layout.symbol_count == 3

    def test_wrong_data_count_rejected(self):
        with pytest.raises(ValueError, match="data symbols"):
            StripeLayout("bad", k=2, length=2, symbols=(
                Symbol(0, SymbolKind.DATA, (0,), (1, 0), "d0"),
            ))

    def test_symbol_index_mismatch_rejected(self):
        with pytest.raises(ValueError, match="indices"):
            StripeLayout("bad", k=1, length=1, symbols=(
                Symbol(5, SymbolKind.DATA, (0,), (1,), "d0"),
            ))

    def test_slot_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            StripeLayout("bad", k=1, length=1, symbols=(
                Symbol(0, SymbolKind.DATA, (3,), (1,), "d0"),
            ))

    def test_malformed_coefficients_rejected(self):
        with pytest.raises(ValueError, match="coefficient"):
            StripeLayout("bad", k=2, length=1, symbols=(
                Symbol(0, SymbolKind.DATA, (0,), (1,), "d0"),
                Symbol(1, SymbolKind.DATA, (0,), (0, 1), "d1"),
            ))

    def test_duplicate_replica_rejected(self):
        with pytest.raises(ValueError, match="replicated twice"):
            Symbol(0, SymbolKind.DATA, (1, 1), (1,), "d0")

    def test_empty_replicas_rejected(self):
        with pytest.raises(ValueError, match="no replicas"):
            Symbol(0, SymbolKind.DATA, (), (1,), "d0")

    def test_nonpositive_k_rejected(self):
        with pytest.raises(ValueError):
            StripeLayout("bad", k=0, length=1, symbols=())


class TestDerivedStructure:
    def test_total_blocks_counts_replicas(self):
        assert simple_layout().total_blocks == 6

    def test_storage_overhead(self):
        assert simple_layout().storage_overhead == pytest.approx(3.0)

    def test_slot_map(self):
        layout = simple_layout()
        assert layout.symbols_on_slot(0) == (0, 2)
        assert layout.symbols_on_slot(1) == (0, 1)
        assert layout.symbols_on_slot(2) == (1, 2)

    def test_blocks_per_slot(self):
        assert simple_layout().blocks_per_slot() == (2, 2, 2)

    def test_kind_partitions(self):
        layout = simple_layout()
        assert [s.index for s in layout.data_symbols()] == [0, 1]
        assert [s.index for s in layout.parity_symbols()] == [2]

    def test_generator_matrix(self):
        matrix = simple_layout().generator_matrix()
        assert matrix.dtype == np.uint8
        assert matrix.tolist() == [[1, 0], [0, 1], [1, 1]]


class TestFailureReasoning:
    def test_no_failures_nothing_lost(self):
        layout = simple_layout()
        assert layout.lost_symbols(set()) == ()
        assert layout.surviving_symbols(set()) == (0, 1, 2)

    def test_single_failure_loses_nothing(self):
        layout = simple_layout()
        assert layout.lost_symbols({0}) == ()
        assert set(layout.surviving_symbols({0})) == {0, 1, 2}

    def test_double_failure_loses_shared_symbol(self):
        layout = simple_layout()
        assert layout.lost_symbols({0, 1}) == (0,)
        assert layout.lost_symbols({0, 2}) == (2,)
        assert layout.lost_symbols({1, 2}) == (1,)

    def test_replicas_alive(self):
        layout = simple_layout()
        assert layout.replicas_alive(0, {0}) == (1,)
        assert layout.replicas_alive(0, {0, 1}) == ()
        assert layout.replicas_alive(2, set()) == (0, 2)
