"""Determinism checker: seeded violations in fixture files are caught,
and the seed-sensitive scope plus alias handling behave."""

from __future__ import annotations

import textwrap

from repro.analysis import run_lint


def lint_source(tmp_path, source, rel="experiments/sweep.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    report = run_lint(root=tmp_path, paths=[tmp_path],
                      checkers=["determinism"], context_paths=[])
    return report


def rules(report):
    return [(f.rule, f.line) for f in report.active]


class TestGlobalRng:
    def test_stdlib_random_module_call(self, tmp_path):
        report = lint_source(tmp_path, """\
            import random

            def draw():
                return random.choice([1, 2, 3])
        """)
        assert rules(report) == [("determinism.global-rng", 4)]

    def test_stdlib_random_alias(self, tmp_path):
        report = lint_source(tmp_path, """\
            import random as rnd

            def draw():
                return rnd.shuffle([1, 2])
        """)
        assert rules(report) == [("determinism.global-rng", 4)]

    def test_from_import_of_offender(self, tmp_path):
        report = lint_source(tmp_path, """\
            from random import choice

            def draw():
                return choice([1, 2])
        """)
        assert rules(report) == [("determinism.global-rng", 4)]

    def test_np_random_module_function(self, tmp_path):
        report = lint_source(tmp_path, """\
            import numpy as np

            def reseed():
                np.random.seed(0)
                return np.random.random(4)
        """)
        assert rules(report) == [("determinism.global-rng", 4),
                                 ("determinism.global-rng", 5)]

    def test_numpy_random_submodule_alias(self, tmp_path):
        report = lint_source(tmp_path, """\
            import numpy.random as npr

            def draw():
                return npr.normal(size=3)
        """)
        assert rules(report) == [("determinism.global-rng", 4)]

    def test_random_class_instances_are_fine(self, tmp_path):
        report = lint_source(tmp_path, """\
            import random

            def draw(seed):
                return random.Random(seed).random()
        """)
        assert report.ok()


class TestUnseededRng:
    def test_default_rng_without_seed(self, tmp_path):
        report = lint_source(tmp_path, """\
            import numpy as np

            def fresh():
                return np.random.default_rng()
        """)
        assert rules(report) == [("determinism.unseeded-rng", 4)]

    def test_seeded_default_rng_is_fine(self, tmp_path):
        report = lint_source(tmp_path, """\
            import numpy as np

            def stream(seed):
                return np.random.default_rng(seed)
        """)
        assert report.ok()

    def test_from_import_default_rng(self, tmp_path):
        report = lint_source(tmp_path, """\
            from numpy.random import default_rng

            def fresh():
                return default_rng()
        """)
        assert rules(report) == [("determinism.unseeded-rng", 4)]


class TestWallClock:
    def test_time_time(self, tmp_path):
        report = lint_source(tmp_path, """\
            import time

            def stamp():
                return time.time()
        """)
        assert rules(report) == [("determinism.wall-clock", 4)]

    def test_monotonic_clocks_are_fine(self, tmp_path):
        report = lint_source(tmp_path, """\
            import time

            def tick():
                return time.monotonic(), time.perf_counter()
        """)
        assert report.ok()

    def test_datetime_now(self, tmp_path):
        report = lint_source(tmp_path, """\
            from datetime import datetime

            def stamp():
                return datetime.now()
        """)
        assert rules(report) == [("determinism.wall-clock", 4)]

    def test_datetime_module_path(self, tmp_path):
        report = lint_source(tmp_path, """\
            import datetime

            def stamp():
                return datetime.date.today()
        """)
        assert rules(report) == [("determinism.wall-clock", 4)]


class TestScope:
    SOURCE = """\
        import random

        def draw():
            return random.random()
    """

    def test_sensitive_trees_are_checked(self, tmp_path):
        for rel in ("experiments/a.py", "reliability/b.py",
                    "mapreduce/c.py", "scheduling/d.py",
                    "workloads/e.py", "service/faults.py"):
            report = lint_source(tmp_path, self.SOURCE, rel=rel)
            assert not report.ok(), rel

    def test_other_code_is_out_of_scope(self, tmp_path):
        for rel in ("tools/a.py", "service/namenode.py", "gf/native.py"):
            report = lint_source(tmp_path, self.SOURCE, rel=rel)
            assert report.ok(), rel

    def test_waiver_silences_the_site(self, tmp_path):
        report = lint_source(tmp_path, """\
            import time

            def stamp():
                return time.time()  # lint: allow(determinism.wall-clock): display only
        """)
        assert report.ok()
        assert len(report.waived) == 1
