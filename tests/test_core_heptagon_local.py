"""Tests for the heptagon-local locally regenerating code (paper Section 2.2)."""

import itertools

import numpy as np
import pytest

from repro.core import (
    GLOBAL_SLOT,
    Code,
    HeptagonLocalCode,
    SymbolKind,
    UnrecoverableStripeError,
    verify_repair_plan,
)
from repro.gf import GF256


@pytest.fixture(scope="module")
def code():
    return HeptagonLocalCode()


@pytest.fixture(scope="module")
def encoded(code):
    rng = np.random.default_rng(7)
    data = [rng.integers(0, 256, 48, dtype=np.uint8) for _ in range(40)]
    return code.encode(data), data


class TestLayout:
    def test_dimensions_match_table1(self, code):
        assert code.k == 40
        assert code.length == 15
        assert code.total_blocks == 86
        assert code.storage_overhead == pytest.approx(2.15)

    def test_symbol_census(self, code):
        layout = code.layout
        kinds = [s.kind for s in layout.symbols]
        assert kinds.count(SymbolKind.DATA) == 40
        assert kinds.count(SymbolKind.LOCAL_PARITY) == 2
        assert kinds.count(SymbolKind.GLOBAL_PARITY) == 2

    def test_heptagon_nodes_store_six_blocks_global_stores_two(self, code):
        per_slot = code.layout.blocks_per_slot()
        assert per_slot[:14] == (6,) * 14
        assert per_slot[GLOBAL_SLOT] == 2

    def test_data_symbols_double_replicated_globals_single(self, code):
        for symbol in code.layout.symbols:
            expected = 1 if symbol.kind is SymbolKind.GLOBAL_PARITY else 2
            assert symbol.replica_count == expected

    def test_groups_are_disjoint(self, code):
        groups = code.local_group_slots()
        all_slots = [s for slots in groups.values() for s in slots]
        assert sorted(all_slots) == list(range(15))

    def test_group_of_slot(self, code):
        assert code.group_of_slot(0) == 0
        assert code.group_of_slot(13) == 1
        assert code.group_of_slot(14) is None   # the global-parity node
        with pytest.raises(ValueError):
            code.group_of_slot(15)


class TestEncoding:
    def test_local_parities_are_xor_of_their_half(self, code, encoded):
        blocks, data = encoded
        layout = code.layout
        parity_a = next(s for s in layout.symbols if s.label == "PA")
        parity_b = next(s for s in layout.symbols if s.label == "PB")
        assert np.array_equal(blocks[parity_a.index], GF256.xor_reduce(data[:20]))
        assert np.array_equal(blocks[parity_b.index], GF256.xor_reduce(data[20:]))

    def test_global_parities_are_vandermonde_combinations(self, code, encoded):
        blocks, data = encoded
        layout = code.layout
        for label, power in (("G1", 1), ("G2", 2)):
            symbol = next(s for s in layout.symbols if s.label == label)
            from repro.gf import gf_pow
            expected = GF256.combine(
                [gf_pow(i + 1, power) for i in range(40)], data
            )
            assert np.array_equal(blocks[symbol.index], expected)


class TestFaultTolerance:
    def test_tolerates_any_three_failures(self, code):
        assert code.fault_tolerance == 3

    def test_all_triples_recoverable_by_rank(self, code):
        for subset in itertools.combinations(range(15), 3):
            assert Code.can_recover(code, subset), subset

    def test_closed_form_matches_rank_on_quadruples(self, code):
        rng = np.random.default_rng(11)
        quadruples = list(itertools.combinations(range(15), 4))
        sample = rng.choice(len(quadruples), size=160, replace=False)
        for index in sample:
            subset = quadruples[index]
            assert code.can_recover(subset) == Code.can_recover(code, subset), subset

    def test_fatal_quadruple_census(self, code):
        """4-in-a-heptagon: 2*C(7,4)=70; 3-in-a-heptagon + global: 2*C(7,3)=70."""
        fatal = code.enumerate_fatal_quadruples()
        assert len(fatal) == 140

    def test_specific_fatal_patterns(self, code):
        assert code.is_fatal([0, 1, 2, 3])            # 4 in heptagon A
        assert code.is_fatal([7, 8, 9, GLOBAL_SLOT])  # 3 in B + global
        assert code.is_fatal([0, 1, 2, 7, 8, 9])      # 3 + 3
        assert not code.is_fatal([0, 1, 7, 8])        # 2 + 2 is fine
        assert not code.is_fatal([0, 1, 2, 7])        # 3 + 1 is fine
        assert not code.is_fatal([0, 7, GLOBAL_SLOT])  # 1 + 1 + global


class TestDecode:
    def test_decode_after_triangle_loss(self, code, encoded):
        blocks, data = encoded
        failed = {2, 4, 6}
        available = {
            s: blocks[s] for s in code.layout.surviving_symbols(failed)
        }
        decoded = code.decode_data(available)
        for expected, actual in zip(data, decoded):
            assert np.array_equal(expected, actual)

    def test_decode_fails_after_fatal_pattern(self, code, encoded):
        blocks, _ = encoded
        failed = {0, 1, 2, 3}
        available = {
            s: blocks[s] for s in code.layout.surviving_symbols(failed)
        }
        from repro.gf import SingularMatrixError
        with pytest.raises(SingularMatrixError):
            code.decode_data(available)


class TestLocalRepair:
    def test_single_failure_repairs_locally(self, code):
        """A one-node repair touches only slots of the same heptagon."""
        plan = code.plan_node_repair([3])
        assert plan.network_blocks == 6
        touched = {t.source_slot for t in plan.transfers}
        assert touched <= set(range(7))

    def test_single_failure_in_b_stays_in_b(self, code):
        plan = code.plan_node_repair([9])
        touched = {t.source_slot for t in plan.transfers}
        assert touched <= set(range(7, 14))

    def test_double_failure_in_one_heptagon_uses_partial_parities(self, code):
        plan = code.plan_node_repair([0, 1])
        # Heptagon double repair: 10 copies + 5 partials + 1 forward = 16.
        assert plan.network_blocks == 16
        sources = {t.source_slot for t in plan.transfers if t.source_slot is not None}
        assert sources <= set(range(7))

    def test_repairs_restore_bytes(self, code, encoded):
        blocks, _ = encoded
        patterns = [
            [0], [8], [GLOBAL_SLOT],
            [0, 1], [9, 12], [0, 8],
            [0, 1, 8], [0, 8, 9], [5, 6, 12],
            [0, GLOBAL_SLOT], [0, 1, GLOBAL_SLOT], [3, 9, GLOBAL_SLOT],
        ]
        for failed in patterns:
            plan = code.plan_node_repair(failed)
            assert verify_repair_plan(code, blocks, plan), failed

    def test_triangle_repair_restores_bytes(self, code, encoded):
        """3 failures in one heptagon need the global equations."""
        blocks, _ = encoded
        for failed in ([0, 1, 2], [4, 5, 6], [7, 8, 13], [9, 11, 12]):
            plan = code.plan_node_repair(failed)
            assert verify_repair_plan(code, blocks, plan), failed

    def test_global_rebuild_uses_partial_aggregation(self, code):
        plan = code.plan_node_repair([GLOBAL_SLOT])
        # 5 primary slots per heptagon x 2 heptagons x 2 parities = 20
        # partial blocks, not 40 whole-block reads.
        assert plan.network_blocks == 20
        assert all(t.kind.value == "partial" for t in plan.transfers)

    def test_fatal_pattern_raises(self, code):
        with pytest.raises(UnrecoverableStripeError):
            code.plan_node_repair([0, 1, 2, 3])
        with pytest.raises(UnrecoverableStripeError):
            code.plan_node_repair([0, 1, 2, GLOBAL_SLOT])


class TestDegradedRead:
    def test_local_degraded_read_is_cheap(self, code, encoded):
        """A doubly-lost heptagon block rebuilds from 5 partial parities."""
        blocks, _ = encoded
        from repro.core import execute_read_plan
        symbol = 0  # edge (0,1) of heptagon A
        plan = code.plan_degraded_read(symbol, failed_slots={0, 1})
        assert plan.network_blocks == 5  # heptagon partial parities only
        sources = {t.source_slot for t in plan.transfers}
        assert sources <= set(range(7))  # never touches rack B or global
        value = execute_read_plan(code, blocks, plan, {0, 1})
        assert np.array_equal(value, blocks[symbol])

    def test_b_side_degraded_read_stays_in_b(self, code, encoded):
        blocks, _ = encoded
        from repro.core import execute_read_plan
        # Edge (7,8) of heptagon B is symbol 21 (B's local index 0).
        symbol = 21
        plan = code.plan_degraded_read(symbol, failed_slots={7, 8})
        assert plan.network_blocks == 5
        assert {t.source_slot for t in plan.transfers} <= set(range(7, 14))
        value = execute_read_plan(code, blocks, plan, {7, 8})
        assert np.array_equal(value, blocks[symbol])

    def test_read_with_live_replica_costs_one(self, code):
        plan = code.plan_degraded_read(0, failed_slots={0})
        assert plan.network_blocks == 1
