"""Tests for the transient-failure / repair-timeout experiment."""

import numpy as np
import pytest

from repro.experiments import transient


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            transient.TransientModel(node_count=0)
        with pytest.raises(ValueError):
            transient.TransientModel(mean_outage_hours=0)


class TestCostProfiles:
    def test_double_replication_codes_rebuild_at_unit_cost(self):
        for code in ("2-rep", "3-rep", "pentagon", "heptagon"):
            profile = transient.RepairCostProfile.for_code(code)
            assert profile.rebuild_blocks_per_lost_block == pytest.approx(1.0)

    def test_rs_rebuild_multiplier_is_k(self):
        profile = transient.RepairCostProfile.for_code("rs(14,10)")
        assert profile.rebuild_blocks_per_lost_block == pytest.approx(10.0)

    def test_degraded_read_costs(self):
        assert transient.RepairCostProfile.for_code("pentagon").degraded_read_blocks == 3
        assert transient.RepairCostProfile.for_code("rs(14,10)").degraded_read_blocks == 10
        assert transient.RepairCostProfile.for_code("2-rep").degraded_read_blocks is None


class TestSimulation:
    def test_deterministic_with_seed(self):
        model = transient.TransientModel(horizon_hours=24 * 30)
        first = transient.simulate_timeout_policy(
            "pentagon", 1.0, model, np.random.default_rng(3))
        second = transient.simulate_timeout_policy(
            "pentagon", 1.0, model, np.random.default_rng(3))
        assert first == second

    def test_zero_like_timeout_repairs_everything(self):
        model = transient.TransientModel(horizon_hours=24 * 30)
        outcome = transient.simulate_timeout_policy(
            "2-rep", 1e-9, model, np.random.default_rng(4))
        assert outcome.repairs_triggered == outcome.outages

    def test_huge_timeout_repairs_nothing(self):
        model = transient.TransientModel(horizon_hours=24 * 30)
        outcome = transient.simulate_timeout_policy(
            "2-rep", 1e6, model, np.random.default_rng(4))
        assert outcome.repairs_triggered == 0
        assert outcome.repair_gb == 0.0

    def test_exposure_grows_with_timeout(self):
        model = transient.TransientModel(horizon_hours=24 * 90)
        short = transient.simulate_timeout_policy(
            "pentagon", 0.1, model, np.random.default_rng(5))
        long = transient.simulate_timeout_policy(
            "pentagon", 10.0, model, np.random.default_rng(5))
        assert long.degraded_read_exposure_hours > short.degraded_read_exposure_hours


class TestSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return transient.timeout_sweep(
            model=transient.TransientModel(horizon_hours=24 * 180))

    def test_all_shape_checks_pass(self, rows):
        checks = transient.shape_checks(rows)
        assert all(checks.values()), checks

    def test_same_outage_stream_across_codes(self, rows):
        by = {(r.code, r.timeout_hours): r for r in rows}
        assert (by[("2-rep", 1.0)].outages
                == by[("pentagon", 1.0)].outages
                == by[("rs(14,10)", 1.0)].outages)

    def test_rows_render(self, rows):
        from repro.experiments import render_table
        text = render_table(transient.HEADERS, [r.as_list() for r in rows])
        assert "pentagon" in text and "timeout" in text
