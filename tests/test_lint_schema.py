"""Wire-schema checker: request schemas derived from handler bodies
are enforced at call sites, reply reads are checked against response
schemas, distributed frame shapes must agree end to end, and the
committed artifact is drift-gated."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import (derive_wire_schema, render_wire_schema,
                            run_lint)
from repro.analysis.core import Project

NAMENODE = """\
    class NameNodeServer:
        def _op_stat(self, data):
            name = data["name"]
            verbose = data.get("verbose", False)
            return {"size": 7, "stripes": 3}

        def _op_shutdown(self, data):
            return {}
"""


def build(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint(root=tmp_path, paths=[tmp_path],
                    checkers=["schema"], context_paths=[])


def active(report):
    return [(f.rule, f.path, f.line) for f in report.active]


class TestDerivation:
    def test_request_and_response_schema(self, tmp_path):
        for rel, src in {"service/namenode.py": NAMENODE}.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(src))
        project = Project(tmp_path, [tmp_path], context_paths=())
        schema = derive_wire_schema(project)
        stat = schema["services"]["namenode"]["stat"]
        assert stat["request"]["required"] == ["name"]
        assert stat["request"]["optional"] == ["verbose"]
        assert sorted(stat["response"]["keys"]) == ["size", "stripes"]
        assert stat["response"]["complete"] is True

    def test_render_is_stable(self, tmp_path):
        (tmp_path / "service").mkdir(parents=True)
        (tmp_path / "service/namenode.py").write_text(
            textwrap.dedent(NAMENODE))
        project = Project(tmp_path, [tmp_path], context_paths=())
        text = render_wire_schema(derive_wire_schema(project))
        assert text.endswith("\n")
        assert json.loads(text)["version"] == 1
        # deterministic: deriving twice renders byte-identically
        again = Project(tmp_path, [tmp_path], context_paths=())
        assert render_wire_schema(derive_wire_schema(again)) == text


class TestCallSites:
    def test_mismatched_payload_key_caught(self, tmp_path):
        report = build(tmp_path, {
            "service/namenode.py": NAMENODE,
            "service/client.py": """\
                class StorageClient:
                    def stat(self, name):
                        return self._nn_call("stat", {"nam": name})
            """,
        })
        found = active(report)
        assert ("schema.missing-key", "service/client.py", 3) in found
        assert ("schema.unknown-key", "service/client.py", 3) in found

    def test_correct_call_site_is_clean(self, tmp_path):
        report = build(tmp_path, {
            "service/namenode.py": NAMENODE,
            "service/client.py": """\
                class StorageClient:
                    def stat(self, name):
                        return self._nn_call(
                            "stat", {"name": name, "verbose": True})
            """,
        })
        assert active(report) == []

    def test_unknown_reply_key(self, tmp_path):
        report = build(tmp_path, {
            "service/namenode.py": NAMENODE,
            "service/client.py": """\
                class StorageClient:
                    def stat(self, name):
                        reply = self._nn_call("stat", {"name": name})
                        return reply["sise"]
            """,
        })
        assert ("schema.unknown-reply-key", "service/client.py", 4) \
            in active(report)


class TestFrames:
    def test_frame_shape_mismatch(self, tmp_path):
        report = build(tmp_path, {
            "experiments/distributed.py": """\
                from repro.net import send_frame, recv_frame

                def coordinator(sock, generation, unit_id, payload):
                    send_frame(sock, ("unit", (generation, payload)))

                def worker(sock):
                    kind, data = recv_frame(sock)
                    if kind == "unit":
                        generation, unit_id, payload = data
                        return payload
            """,
        })
        assert [(f.rule, f.path) for f in report.active] == [
            ("schema.frame-shape", "experiments/distributed.py")]

    def test_matching_frames_clean(self, tmp_path):
        report = build(tmp_path, {
            "experiments/distributed.py": """\
                from repro.net import send_frame, recv_frame

                def coordinator(sock, generation, unit_id, payload):
                    send_frame(sock, ("unit", (generation, unit_id,
                                               payload)))

                def worker(sock):
                    kind, data = recv_frame(sock)
                    if kind == "unit":
                        generation, unit_id, payload = data
                        return payload
            """,
        })
        assert active(report) == []


class TestArtifactGate:
    FILES = {"service/namenode.py": NAMENODE}

    def _write(self, tmp_path, extra=()):
        files = dict(self.FILES, **dict(extra))
        for rel, src in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(src))

    def test_missing_artifact_flagged_when_docs_exist(self, tmp_path):
        self._write(tmp_path)
        (tmp_path / "docs").mkdir()
        report = run_lint(root=tmp_path, paths=[tmp_path],
                          checkers=["schema"], context_paths=[])
        assert [(f.rule, f.path) for f in report.active] == [
            ("schema.artifact-missing", "docs/wire_schema.json")]

    def test_no_docs_dir_no_artifact_gate(self, tmp_path):
        self._write(tmp_path)
        report = run_lint(root=tmp_path, paths=[tmp_path],
                          checkers=["schema"], context_paths=[])
        assert active(report) == []

    def test_fresh_artifact_clean_then_drifts(self, tmp_path):
        self._write(tmp_path)
        (tmp_path / "docs").mkdir()
        project = Project(tmp_path, [tmp_path], context_paths=())
        (tmp_path / "docs/wire_schema.json").write_text(
            render_wire_schema(derive_wire_schema(project)))
        report = run_lint(root=tmp_path, paths=[tmp_path],
                          checkers=["schema"], context_paths=[])
        assert active(report) == []
        # grow the handler surface without regenerating: drift
        (tmp_path / "service/namenode.py").write_text(
            textwrap.dedent(NAMENODE)
            + '\n    def _op_extra(self, data):\n'
              '        return {"ok": data["flag"]}\n')
        report = run_lint(root=tmp_path, paths=[tmp_path],
                          checkers=["schema"], context_paths=[])
        assert [(f.rule, f.path) for f in report.active] == [
            ("schema.artifact-drift", "docs/wire_schema.json")]
