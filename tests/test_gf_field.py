"""Unit and property tests for GF(2^8) scalar/vector arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf import (
    EXP,
    FIELD_SIZE,
    GF256,
    GROUP_ORDER,
    LOG,
    MUL_TABLE,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
    gf_sub,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_exp_log_roundtrip(self):
        for value in range(1, FIELD_SIZE):
            assert EXP[LOG[value]] == value

    def test_exp_is_periodic(self):
        for power in range(GROUP_ORDER):
            assert EXP[power] == EXP[power + GROUP_ORDER]

    def test_exp_values_cover_group(self):
        assert len({int(EXP[p]) for p in range(GROUP_ORDER)}) == GROUP_ORDER

    def test_mul_table_against_scalar(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            a, b = int(rng.integers(256)), int(rng.integers(256))
            assert MUL_TABLE[a, b] == gf_mul(a, b)


class TestScalarOps:
    def test_add_is_xor(self):
        assert gf_add(0b1010, 0b0110) == 0b1100

    def test_sub_equals_add(self):
        assert gf_sub(200, 77) == gf_add(200, 77)

    def test_mul_identity(self):
        for value in range(256):
            assert gf_mul(value, 1) == value

    def test_mul_zero_annihilates(self):
        for value in range(256):
            assert gf_mul(value, 0) == 0

    def test_known_product(self):
        # 2 * 2 = x * x = x^2 = 4 under 0x11d.
        assert gf_mul(2, 2) == 4
        # 0x80 * 2 = x^8 = 0x11d ^ 0x100 = 0x1d.
        assert gf_mul(0x80, 2) == 0x1D

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            gf_mul(256, 1)
        with pytest.raises(ValueError):
            gf_add(-1, 0)

    def test_pow_matches_repeated_mul(self):
        value = 1
        for exponent in range(10):
            assert gf_pow(3, exponent) == value
            value = gf_mul(value, 3)

    def test_pow_negative_exponent(self):
        assert gf_mul(gf_pow(7, -1), 7) == 1

    def test_pow_zero_base(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            gf_pow(0, -1)


class TestFieldAxioms:
    @given(elements, elements)
    def test_add_commutative(self, a, b):
        assert gf_add(a, b) == gf_add(b, a)

    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(elements)
    def test_additive_inverse_is_self(self, a):
        assert gf_add(a, a) == 0

    @given(nonzero)
    def test_multiplicative_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(nonzero, nonzero)
    def test_div_mul_roundtrip(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a


class TestVectorOps:
    def test_asarray_from_bytes(self):
        array = GF256.asarray(b"\x01\x02\x03")
        assert array.dtype == np.uint8
        assert list(array) == [1, 2, 3]

    def test_add_buffers(self):
        out = GF256.add(b"\x0f\xf0", b"\xff\xff")
        assert list(out) == [0xF0, 0x0F]

    def test_scale_by_zero_and_one(self):
        buffer = GF256.asarray(b"\x07\x09")
        assert list(GF256.scale(buffer, 0)) == [0, 0]
        assert list(GF256.scale(buffer, 1)) == [7, 9]

    def test_scale_matches_scalar_mul(self):
        rng = np.random.default_rng(1)
        buffer = rng.integers(0, 256, size=64, dtype=np.uint8)
        for coefficient in (2, 3, 0x1D, 255):
            scaled = GF256.scale(buffer, coefficient)
            expected = [gf_mul(int(v), coefficient) for v in buffer]
            assert list(scaled) == expected

    def test_axpy_accumulates(self):
        acc = np.zeros(4, dtype=np.uint8)
        GF256.axpy(acc, 3, b"\x01\x01\x01\x01")
        GF256.axpy(acc, 3, b"\x01\x01\x01\x01")
        assert list(acc) == [0, 0, 0, 0]  # char-2: same term twice cancels

    def test_combine_matches_manual(self):
        rng = np.random.default_rng(2)
        buffers = [rng.integers(0, 256, 32, dtype=np.uint8) for _ in range(3)]
        coefficients = [5, 7, 11]
        out = GF256.combine(coefficients, buffers)
        manual = np.zeros(32, dtype=np.uint8)
        for c, buf in zip(coefficients, buffers):
            manual ^= MUL_TABLE[c][buf]
        assert np.array_equal(out, manual)

    def test_combine_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            GF256.combine([1, 1], [b"\x00", b"\x00\x00"])

    def test_combine_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            GF256.combine([1], [b"\x00", b"\x00"])

    def test_combine_empty_needs_length(self):
        out = GF256.combine([], [], length=5)
        assert list(out) == [0] * 5
        with pytest.raises(ValueError):
            GF256.combine([], [])

    def test_xor_reduce(self):
        out = GF256.xor_reduce([b"\x01", b"\x02", b"\x04"])
        assert list(out) == [7]
        with pytest.raises(ValueError):
            GF256.xor_reduce([])

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=16),
           st.integers(0, 255), st.integers(0, 255))
    def test_scale_distributes_over_add(self, data, c1, c2):
        buffer = GF256.asarray(data)
        left = GF256.scale(buffer, c1 ^ c2)
        right = GF256.add(GF256.scale(buffer, c1), GF256.scale(buffer, c2))
        assert np.array_equal(left, right)
