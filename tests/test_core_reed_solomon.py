"""Tests for the Reed-Solomon single-copy baseline."""

import itertools

import numpy as np
import pytest

from repro.core import ReedSolomonCode, SymbolKind, verify_repair_plan


def encoded(code, seed=0, size=32):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(code.k)]
    return code.encode(data), data


class TestLayout:
    def test_dimensions(self):
        code = ReedSolomonCode(14, 10)
        assert code.k == 10
        assert code.length == 14
        assert code.total_blocks == 14
        assert code.storage_overhead == pytest.approx(1.4)

    def test_single_copy_per_symbol(self):
        code = ReedSolomonCode(9, 6)
        assert all(s.replica_count == 1 for s in code.layout.symbols)

    def test_systematic_prefix(self):
        code = ReedSolomonCode(9, 6)
        for i, symbol in enumerate(code.layout.symbols[:6]):
            assert symbol.kind is SymbolKind.DATA
            row = list(symbol.coefficients)
            assert row[i] == 1 and sum(row) == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(5, 5)
        with pytest.raises(ValueError):
            ReedSolomonCode(300, 100)


class TestMDSProperty:
    def test_tolerance_is_n_minus_k(self):
        assert ReedSolomonCode(9, 6).fault_tolerance == 3
        assert ReedSolomonCode(6, 4).fault_tolerance == 2

    def test_decode_from_any_k_symbols(self):
        code = ReedSolomonCode(8, 5)
        blocks, data = encoded(code, seed=2)
        for subset in itertools.combinations(range(8), 5):
            available = {i: blocks[i] for i in subset}
            decoded = code.decode_data(available)
            for expected, actual in zip(data, decoded):
                assert np.array_equal(expected, actual)

    def test_k_minus_one_symbols_insufficient(self):
        code = ReedSolomonCode(8, 5)
        assert not code.can_decode_from_symbols(range(4))


class TestRepair:
    def test_single_repair_costs_k_blocks(self):
        code = ReedSolomonCode(14, 10)
        plan = code.plan_node_repair([0])
        assert plan.network_blocks == 10

    def test_repairs_restore_bytes(self):
        code = ReedSolomonCode(8, 5)
        blocks, _ = encoded(code, seed=5)
        for failed in ([0], [7], [0, 1], [2, 6, 7]):
            assert verify_repair_plan(code, blocks, code.plan_node_repair(failed))

    def test_degraded_read_costs_k_blocks(self):
        code = ReedSolomonCode(14, 10)
        plan = code.plan_degraded_read(3, failed_slots={3})
        assert plan.network_blocks == 10
