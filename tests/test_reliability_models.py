"""Tests for the per-code reliability chains and system scaling."""

import numpy as np
import pytest

from repro.core import make_code
from repro.reliability import (
    ReliabilityParams,
    brute_force_chain,
    calibrate_mttf,
    conservative_chain,
    group_count,
    group_model,
    group_mttdl_years,
    heptagon_local_chain,
    polygon_chain,
    raid_mirror_chain,
    relative_error,
    replication_chain,
    simulate_group_mttd,
    system_mttdl_years,
)

#: Accelerated rates so brute-force and Monte-Carlo runs stay fast.
FAST = ReliabilityParams(node_mttf_hours=100.0, node_mttr_hours=10.0)


class TestParams:
    def test_rates(self):
        params = ReliabilityParams(node_mttf_hours=100, node_mttr_hours=4)
        assert params.failure_rate == pytest.approx(0.01)
        assert params.repair_rate == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityParams(node_mttf_hours=0)
        with pytest.raises(ValueError):
            ReliabilityParams(repair="magic")

    def test_effective_repair_rate(self):
        parallel = ReliabilityParams(node_mttr_hours=10, repair="parallel")
        serial = ReliabilityParams(node_mttr_hours=10, repair="serial")
        assert parallel.effective_repair_rate(3) == pytest.approx(0.3)
        assert serial.effective_repair_rate(3) == pytest.approx(0.1)
        assert parallel.effective_repair_rate(0) == 0.0


class TestChainsAgainstBruteForce:
    """The symmetry-reduced chains must match exact subset chains."""

    @pytest.mark.parametrize("code_name,builder,start", [
        ("3-rep", lambda p: replication_chain(3, p), 0),
        ("2-rep", lambda p: replication_chain(2, p), 0),
        ("pentagon", lambda p: polygon_chain(5, p), 0),
        ("heptagon", lambda p: polygon_chain(7, p), 0),
        ("(4,3) RAID+m", lambda p: raid_mirror_chain(3, p), (0, 0)),
        ("heptagon-local", heptagon_local_chain, (0, 0, 0)),
    ])
    def test_reduced_equals_brute_force(self, code_name, builder, start):
        code = make_code(code_name)
        reduced = builder(FAST).mean_time_to_absorption(start)
        exact = brute_force_chain(code, FAST).mean_time_to_absorption(frozenset())
        assert relative_error(reduced, exact) < 1e-9

    def test_serial_repair_variant_agrees_for_replication(self):
        params = ReliabilityParams(node_mttf_hours=100, node_mttr_hours=10,
                                   repair="serial")
        reduced = replication_chain(3, params).mean_time_to_absorption(0)
        exact = brute_force_chain(
            make_code("3-rep"), params).mean_time_to_absorption(frozenset())
        assert relative_error(reduced, exact) < 1e-9


class TestMonteCarloAgreement:
    @pytest.mark.parametrize("code_name,start", [
        ("3-rep", 0),
        ("pentagon", 0),
        ("(4,3) RAID+m", (0, 0)),
    ])
    def test_node_level_simulation_matches_chain(self, code_name, start):
        model = group_model(code_name, FAST)
        expected = model.mttdl_hours()
        measured = simulate_group_mttd(
            make_code(code_name), FAST, np.random.default_rng(1), trials=800)
        assert relative_error(measured, expected) < 0.15


class TestOrderings:
    """Structural facts that must hold for any sane parameters."""

    PARAMS = ReliabilityParams(node_mttf_hours=50_000, node_mttr_hours=24)

    def test_heptagon_below_pentagon_below_three_rep(self):
        pentagon = system_mttdl_years("pentagon", self.PARAMS)
        heptagon = system_mttdl_years("heptagon", self.PARAMS)
        three_rep = system_mttdl_years("3-rep", self.PARAMS)
        assert heptagon < pentagon < three_rep

    def test_heptagon_local_beats_plain_heptagon_by_orders(self):
        local = system_mttdl_years("heptagon-local", self.PARAMS)
        plain = system_mttdl_years("heptagon", self.PARAMS)
        assert local > 100 * plain

    def test_two_rep_far_below_three_rep(self):
        assert (system_mttdl_years("2-rep", self.PARAMS)
                < 1e-2 * system_mttdl_years("3-rep", self.PARAMS))

    def test_conservative_never_exceeds_pattern(self):
        for code_name in ("pentagon", "heptagon-local", "(10,9) RAID+m"):
            pattern = system_mttdl_years(code_name, self.PARAMS, model="pattern")
            conservative = system_mttdl_years(
                code_name, self.PARAMS, model="conservative")
            assert conservative <= pattern * (1 + 1e-9)

    def test_conservative_equals_pattern_for_polygon(self):
        """Every 3-failure is fatal for polygons, so the models coincide."""
        pattern = group_mttdl_years("pentagon", self.PARAMS, model="pattern")
        conservative = group_mttdl_years("pentagon", self.PARAMS,
                                         model="conservative")
        assert pattern == pytest.approx(conservative, rel=1e-9)

    def test_longer_mttf_improves_mttdl(self):
        better = ReliabilityParams(node_mttf_hours=100_000, node_mttr_hours=24)
        assert (system_mttdl_years("pentagon", better)
                > system_mttdl_years("pentagon", self.PARAMS))


class TestSystemScaling:
    def test_group_counts_for_25_nodes(self):
        assert group_count("3-rep", 25) == 8
        assert group_count("pentagon", 25) == 5
        assert group_count("heptagon", 25) == 3
        assert group_count("heptagon-local", 25) == 1
        assert group_count("(10,9) RAID+m", 25) == 1
        assert group_count("(12,11) RAID+m", 25) == 1  # clamped to >= 1

    def test_system_is_group_over_count(self):
        params = self.params = ReliabilityParams(node_mttf_hours=50_000)
        group = group_mttdl_years("pentagon", params)
        system = system_mttdl_years("pentagon", params, node_count=25)
        assert system == pytest.approx(group / 5)


class TestCalibration:
    def test_anchor_hits_target(self):
        params = calibrate_mttf(1.20e9, anchor="3-rep", node_count=25)
        measured = system_mttdl_years("3-rep", params, node_count=25)
        assert measured == pytest.approx(1.20e9, rel=1e-3)

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError):
            calibrate_mttf(1e30, anchor="3-rep")

    def test_preserves_repair_settings(self):
        base = ReliabilityParams(node_mttr_hours=12.0, repair="serial")
        params = calibrate_mttf(1e8, anchor="3-rep", base=base)
        assert params.node_mttr_hours == 12.0
        assert params.repair == "serial"
