"""RPC-surface checker: op registries are rebuilt from dispatch code
and cross-referenced against call sites on both sides of the wire."""

from __future__ import annotations

import textwrap

from repro.analysis import run_lint

NAMENODE = """\
    class NameNodeServer:
        def _op_locations(self, data, peer):
            return {}

        def _op_stat(self, data, peer):
            return {}
"""

DATANODE = """\
    class DataNodeServer:
        def _handle(self, kind, data, sock):
            if kind == "put":
                return {"ok": True}
            if kind in ("get", "delete"):
                return {"ok": True}
            raise ValueError(kind)
"""


def write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def lint(tmp_path, context_paths=()):
    # scan only the source trees: fixture "tests/" files are context,
    # not scanned code
    scan = [p for p in (tmp_path / "service", tmp_path / "experiments",
                        tmp_path / "repro")
            if p.is_dir()]
    return run_lint(root=tmp_path, paths=scan, checkers=["rpc"],
                    context_paths=list(context_paths))


def actives(report):
    return [(f.rule, f.path, f.line) for f in report.active]


class TestOpRegistries:
    def test_matched_surface_is_clean(self, tmp_path):
        write(tmp_path, "service/namenode.py", NAMENODE)
        write(tmp_path, "service/datanode.py", DATANODE)
        write(tmp_path, "service/client.py", """\
            class StorageClient:
                def use(self):
                    self._nn_call("locations", {})
                    self._nn_call("stat", {})
                    self._dn_call(0, "put", {})
                    self._dn_call(0, "get", {})
                    self._dn_call(0, "delete", {})
        """)
        report = lint(tmp_path)
        assert report.ok(), report.format_text()

    def test_unknown_namenode_op_flagged_at_call_site(self, tmp_path):
        write(tmp_path, "service/namenode.py", NAMENODE)
        write(tmp_path, "service/client.py", """\
            class StorageClient:
                def use(self):
                    self._nn_call("locations", {})
                    self._nn_call("locatoins", {})
        """)
        report = lint(tmp_path)
        assert ("rpc.unknown-op", "service/client.py", 4) in actives(report)

    def test_unused_handler_flagged_at_handler(self, tmp_path):
        write(tmp_path, "service/namenode.py", NAMENODE)
        write(tmp_path, "service/client.py", """\
            class StorageClient:
                def use(self):
                    self._nn_call("locations", {})
        """)
        report = lint(tmp_path)
        assert actives(report) == [
            ("rpc.unused-op", "service/namenode.py", 5)]

    def test_unknown_datanode_op(self, tmp_path):
        write(tmp_path, "service/datanode.py", DATANODE)
        write(tmp_path, "service/client.py", """\
            class StorageClient:
                def use(self):
                    self._dn_call(0, "put", {})
                    self._dn_call(0, "get", {})
                    self._dn_call(0, "delete", {})
                    self._dn_call(0, "putt", {})
        """)
        report = lint(tmp_path)
        assert actives(report) == [
            ("rpc.unknown-op", "service/client.py", 6)]

    def test_hyphenated_op_names_round_trip(self, tmp_path):
        write(tmp_path, "service/namenode.py", """\
            class NameNodeServer:
                def _op_begin_write(self, data, peer):
                    return {}
        """)
        write(tmp_path, "service/client.py", """\
            class StorageClient:
                def use(self):
                    self._nn_call("begin-write", {})
        """)
        report = lint(tmp_path)
        assert report.ok(), report.format_text()

    def test_bare_call_helper_checks_against_both_servers(self, tmp_path):
        write(tmp_path, "service/namenode.py", NAMENODE)
        write(tmp_path, "service/datanode.py", DATANODE + """\

    def heartbeat(sock):
        call(sock, "stat", {})
        call(sock, "nowhere", {})
""")
        write(tmp_path, "service/client.py", """\
            class StorageClient:
                def use(self):
                    self._nn_call("locations", {})
                    self._dn_call(0, "put", {})
                    self._dn_call(0, "get", {})
                    self._dn_call(0, "delete", {})
        """)
        report = lint(tmp_path)
        assert actives(report) == [
            ("rpc.unknown-op", "service/datanode.py", 11)]


class TestAsyncSurface:
    def test_async_op_handlers_register(self, tmp_path):
        write(tmp_path, "service/namenode.py", """\
            class NameNodeServer:
                async def _op_locations(self, data, peer):
                    return {}
        """)
        write(tmp_path, "service/client.py", """\
            class StorageClient:
                def use(self):
                    self._nn_call("locations", {})
        """)
        report = lint(tmp_path)
        assert report.ok(), report.format_text()

    def test_async_client_call_sites_count(self, tmp_path):
        # AsyncRpcClient.call("kind", ...) and RpcPool.call(address,
        # "kind", ...) both count against either registry
        write(tmp_path, "service/namenode.py", NAMENODE)
        write(tmp_path, "service/datanode.py", """\
            class DataNodeServer:
                async def beat(self, client, pool, address):
                    await client.call("locations", {})
                    await pool.call(address, "stat", {})
        """)
        report = lint(tmp_path)
        assert report.ok(), report.format_text()

    def test_async_client_unknown_op(self, tmp_path):
        write(tmp_path, "service/namenode.py", NAMENODE)
        write(tmp_path, "service/datanode.py", """\
            class DataNodeServer:
                async def beat(self, client):
                    await client.call("locations", {})
                    await client.call("stat", {})
                    await client.call("nowhere", {})
        """)
        report = lint(tmp_path)
        assert ("rpc.unknown-op", "service/datanode.py", 5) \
            in actives(report)

    def test_dn_call_sync_counts_as_datanode_call(self, tmp_path):
        write(tmp_path, "service/datanode.py", DATANODE)
        write(tmp_path, "service/cluster.py", """\
            class ServiceCluster:
                def arm(self):
                    self.namenode.dn_call_sync(0, "put", {})
                    self.namenode.dn_call_sync(0, "get", {})
                    self.namenode.dn_call_sync(0, "delete", {})
        """)
        report = lint(tmp_path)
        assert report.ok(), report.format_text()


class TestFramingOps:
    NET = """\
        class AsyncRpcServer:
            async def _serve_rpc(self, conn, kind):
                if kind == "bye":
                    return
    """

    def test_framing_kind_validates_against_either_server(self, tmp_path):
        write(tmp_path, "repro/net.py", self.NET)
        write(tmp_path, "service/datanode.py", DATANODE + """\

    def goodbye(sock):
        call(sock, "bye", None)
        call(sock, "put", {})
        call(sock, "get", {})
        call(sock, "delete", {})
""")
        report = lint(tmp_path)
        assert report.ok(), report.format_text()

    def test_unsent_framing_kind_is_dead_surface(self, tmp_path):
        write(tmp_path, "repro/net.py", self.NET)
        write(tmp_path, "service/datanode.py", DATANODE + """\

    def use(sock):
        call(sock, "put", {})
        call(sock, "get", {})
        call(sock, "delete", {})
""")
        report = lint(tmp_path)
        assert actives(report) == [("rpc.unused-op", "repro/net.py", 3)]


class TestContextCallSites:
    def test_op_called_only_from_tests_counts_as_used(self, tmp_path):
        write(tmp_path, "service/namenode.py", NAMENODE)
        write(tmp_path, "service/client.py", """\
            class StorageClient:
                def use(self):
                    self._nn_call("locations", {})
        """)
        test_file = write(tmp_path, "tests/test_service.py", """\
            def test_stat(client):
                assert client._nn_call("stat", {}) == {}
        """)
        assert not lint(tmp_path).ok()
        report = lint(tmp_path, context_paths=[test_file])
        assert report.ok(), report.format_text()

    def test_context_files_never_produce_findings(self, tmp_path):
        write(tmp_path, "service/namenode.py", NAMENODE)
        write(tmp_path, "service/client.py", """\
            class StorageClient:
                def use(self):
                    self._nn_call("locations", {})
                    self._nn_call("stat", {})
        """)
        test_file = write(tmp_path, "tests/test_service.py", """\
            def test_typo(client):
                client._nn_call("no-such-op", {})
        """)
        report = lint(tmp_path, context_paths=[test_file])
        assert report.ok(), report.format_text()


class TestWorkerFrames:
    def test_symmetric_frame_kinds_are_clean(self, tmp_path):
        write(tmp_path, "experiments/distributed.py", """\
            def coordinator(conn, kind, send_frame):
                if kind == "hello":
                    send_frame(conn, ("welcome", None))
                elif kind == "result":
                    pass

            def worker(sock, kind, unit, send_frame):
                if kind == "welcome":
                    send_frame(sock, ("hello", None))
                reply = ("result", unit)
                send_frame(sock, reply)
        """)
        report = lint(tmp_path)
        assert report.ok(), report.format_text()

    def test_sent_but_unhandled_frame_kind(self, tmp_path):
        write(tmp_path, "experiments/distributed.py", """\
            def coordinator(conn, kind, send_frame):
                if kind == "hello":
                    send_frame(conn, ("welcome", None))
                    send_frame(conn, ("surprise", None))

            def worker(sock, kind, send_frame):
                if kind == "welcome":
                    send_frame(sock, ("hello", None))
        """)
        report = lint(tmp_path)
        assert actives(report) == [
            ("rpc.unknown-op", "experiments/distributed.py", 4)]

    def test_conn_send_frames_are_collected(self, tmp_path):
        # the async coordinator sends via conn.send((kind, data))
        write(tmp_path, "experiments/distributed.py", """\
            async def coordinator(conn, kind):
                if kind == "hello":
                    await conn.send(("welcome", None))

            def worker(sock, kind, send_frame):
                if kind == "welcome":
                    send_frame(sock, ("hello", None))
        """)
        report = lint(tmp_path)
        assert report.ok(), report.format_text()

    def test_handled_but_never_sent_frame_kind(self, tmp_path):
        write(tmp_path, "experiments/distributed.py", """\
            def coordinator(conn, kind, send_frame):
                if kind == "hello":
                    send_frame(conn, ("welcome", None))
                elif kind == "ghost":
                    pass

            def worker(sock, kind, send_frame):
                if kind == "welcome":
                    send_frame(sock, ("hello", None))
        """)
        report = lint(tmp_path)
        assert actives(report) == [
            ("rpc.unused-op", "experiments/distributed.py", 4)]


class TestProtocolConstants:
    def test_protocol_constant_without_dispatch_arm(self, tmp_path):
        write(tmp_path, "service/protocol.py", 'OP_FROB = "frob"\n')
        write(tmp_path, "service/namenode.py", NAMENODE)
        write(tmp_path, "service/client.py", """\
            class StorageClient:
                def use(self):
                    self._nn_call("locations", {})
                    self._nn_call("stat", {})
        """)
        report = lint(tmp_path)
        assert actives(report) == [
            ("rpc.unknown-op", "service/protocol.py", 1)]

    def test_waiver_on_handler(self, tmp_path):
        write(tmp_path, "service/namenode.py", """\
            class NameNodeServer:
                # lint: allow(rpc.unused-op): operator surface
                def _op_shutdown(self, data, peer):
                    return {}
        """)
        report = lint(tmp_path)
        assert report.ok()
        assert [f.rule for f in report.waived] == ["rpc.unused-op"]
