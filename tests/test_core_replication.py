"""Tests for the r-way replication baselines."""

import numpy as np
import pytest

from repro.core import (
    Code,
    ReplicationCode,
    UnrecoverableStripeError,
    verify_repair_plan,
)


class TestLayout:
    @pytest.mark.parametrize("r", [1, 2, 3, 5])
    def test_dimensions(self, r):
        code = ReplicationCode(r)
        assert code.k == 1
        assert code.length == r
        assert code.total_blocks == r
        assert code.storage_overhead == pytest.approx(float(r))

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            ReplicationCode(0)

    def test_names(self):
        assert ReplicationCode(2).name == "2-rep"
        assert ReplicationCode(3).name == "3-rep"


class TestFaultTolerance:
    @pytest.mark.parametrize("r", [1, 2, 3, 4])
    def test_tolerance_is_r_minus_one(self, r):
        assert ReplicationCode(r).fault_tolerance == r - 1

    @pytest.mark.parametrize("r", [2, 3])
    def test_closed_form_matches_rank(self, r):
        import itertools
        code = ReplicationCode(r)
        for size in range(1, r + 1):
            for subset in itertools.combinations(range(r), size):
                assert code.can_recover(subset) == Code.can_recover(code, subset)


class TestEncodeDecode:
    def test_encode_is_identity(self):
        code = ReplicationCode(3)
        blocks = code.encode([b"\x01\x02\x03"])
        assert len(blocks) == 1
        assert list(blocks[0]) == [1, 2, 3]

    def test_decode_from_single_copy(self):
        code = ReplicationCode(3)
        decoded = code.decode_data({0: b"\x09\x08"})
        assert list(decoded[0]) == [9, 8]


class TestRepair:
    def test_single_loss_costs_one_block(self):
        code = ReplicationCode(3)
        plan = code.plan_node_repair([1])
        assert plan.network_blocks == 1

    def test_double_loss_costs_two_blocks(self):
        code = ReplicationCode(3)
        plan = code.plan_node_repair([0, 2])
        assert plan.network_blocks == 2
        assert all(t.source_slot == 1 for t in plan.transfers)

    def test_repair_restores_bytes(self):
        code = ReplicationCode(3)
        blocks = code.encode([np.arange(32, dtype=np.uint8)])
        for failed in ([0], [1], [0, 1], [1, 2]):
            assert verify_repair_plan(code, blocks, code.plan_node_repair(failed))

    def test_total_loss_raises(self):
        with pytest.raises(UnrecoverableStripeError):
            ReplicationCode(2).plan_node_repair([0, 1])

    def test_degraded_read_none_when_all_copies_down(self):
        code = ReplicationCode(2)
        with pytest.raises(UnrecoverableStripeError):
            code.plan_degraded_read(0, failed_slots={0, 1})

    def test_remote_read_costs_one_block(self):
        code = ReplicationCode(2)
        plan = code.plan_degraded_read(0, failed_slots={0})
        assert plan.network_blocks == 1
