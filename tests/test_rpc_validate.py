"""Opt-in runtime schema validation (REPRO_RPC_VALIDATE=1): the
FrameValidator unit surface, and a live namenode rejecting misshapen
frames as typed bad-request errors while well-formed traffic flows."""

from __future__ import annotations

import socket

import pytest

from repro.analysis.schema import FrameValidator
from repro.net import ProtocolError

SCHEMA = {
    "version": 1,
    "services": {
        "namenode": {
            "stat": {
                "request": {"required": ["name"],
                            "optional": ["verbose"]},
                "response": {"kind": "dict", "complete": True,
                             "keys": ["size"], "required": ["size"]},
            },
            "list": {
                "request": {"required": [], "optional": []},
                "response": {"kind": "any", "complete": False},
            },
        },
    },
}


class TestFrameValidator:
    def setup_method(self):
        self.validator = FrameValidator(SCHEMA)

    def test_valid_request_passes(self):
        assert self.validator.validate_request(
            "namenode", "stat", {"name": "f", "verbose": True}) is None

    def test_missing_required_key(self):
        problem = self.validator.validate_request(
            "namenode", "stat", {"verbose": True})
        assert "missing required" in problem and "name" in problem

    def test_unknown_key(self):
        problem = self.validator.validate_request(
            "namenode", "stat", {"name": "f", "nmae": 1})
        assert "unknown key" in problem and "nmae" in problem

    def test_non_dict_payload_with_required_keys(self):
        problem = self.validator.validate_request("namenode", "stat", None)
        assert "needs a dict payload" in problem

    def test_unknown_op_and_service_pass_through(self):
        # dispatch owns unknown-op handling; the validator stays quiet
        assert self.validator.validate_request(
            "namenode", "frobnicate", {"x": 1}) is None
        assert self.validator.validate_request(
            "datanode", "stat", {}) is None

    def test_reply_missing_key(self):
        problem = self.validator.validate_reply("namenode", "stat", {})
        assert "missing key" in problem and "size" in problem

    def test_incomplete_response_schema_not_enforced(self):
        assert self.validator.validate_reply(
            "namenode", "list", ["a", "b"]) is None


@pytest.fixture
def validated_namenode(monkeypatch):
    monkeypatch.setenv("REPRO_RPC_VALIDATE", "1")
    from repro.service.namenode import NameNodeServer
    nn = NameNodeServer(check_period=30.0)
    yield nn
    nn.close()


def raw_call(address, kind, data):
    from repro.service.datanode import call
    with socket.create_connection(address) as sock:
        return call(sock, kind, data)


class TestLiveValidation:
    def test_well_formed_request_flows(self, validated_namenode):
        status = raw_call(validated_namenode.address, "status", {})
        assert status["files"] == 0

    def test_schema_violation_is_typed_bad_request(self,
                                                   validated_namenode):
        with pytest.raises(ProtocolError, match="schema violation"):
            raw_call(validated_namenode.address, "stat", {"nam": "f"})

    def test_unset_env_means_no_validator(self, monkeypatch):
        monkeypatch.delenv("REPRO_RPC_VALIDATE", raising=False)
        from repro.service.namenode import NameNodeServer
        nn = NameNodeServer(check_period=30.0)
        try:
            assert nn.server._validator is None
        finally:
            nn.close()
