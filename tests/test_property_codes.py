"""Cross-code property tests (hypothesis): invariants every scheme obeys.

These treat the whole code zoo uniformly: random data, random tolerated
failure patterns, and the four contracts the library is built on —

1. decode inverts encode under any tolerated failure;
2. repair plans restore failed slots bit-exactly and never read failed
   slots (enforced by the executor);
3. ``can_recover`` agrees with actual decodability;
4. degraded reads return the exact stored bytes.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Code,
    execute_read_plan,
    execute_repair_plan,
    make_code,
    verify_repair_plan,
)
from repro.gf import SingularMatrixError

#: Representative members of every family (small enough for fast plans).
CODE_NAMES = [
    "2-rep", "3-rep", "4-rep",
    "polygon-4", "pentagon", "polygon-6", "heptagon",
    "(4,3) RAID+m", "(6,5) RAID+m", "(10,9) RAID+m",
    "rs(6,4)", "rs(9,6)",
    "pentagon-local",
]

code_names = st.sampled_from(CODE_NAMES)
seeds = st.integers(0, 2**31 - 1)


def make_data(code: Code, seed: int, size: int = 24):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(code.k)]


def random_tolerated_failure(code: Code, seed: int) -> set[int]:
    """A uniformly random recoverable failure pattern (maybe empty)."""
    rng = np.random.default_rng(seed)
    count = int(rng.integers(0, code.fault_tolerance + 1))
    while True:
        slots = set(rng.choice(code.length, size=count, replace=False).tolist())
        if code.can_recover(slots):
            return slots
        # Patterns within tolerance are always recoverable; this loop
        # only re-rolls if count exceeded tolerance (it cannot).


class TestEncodeDecodeRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(code_names, seeds)
    def test_decode_inverts_encode_under_failures(self, name, seed):
        code = make_code(name)
        data = make_data(code, seed)
        blocks = code.encode(data)
        failed = random_tolerated_failure(code, seed ^ 0x5EED)
        available = {
            index: blocks[index]
            for index in code.layout.surviving_symbols(failed)
        }
        decoded = code.decode_data(available)
        for expected, actual in zip(data, decoded):
            assert np.array_equal(expected, actual)

    @settings(max_examples=40, deadline=None)
    @given(code_names, seeds)
    def test_every_symbol_reconstructible(self, name, seed):
        code = make_code(name)
        if code.symbol_count < 2:
            return   # replication's single symbol has nothing to rebuild from
        data = make_data(code, seed)
        blocks = code.encode(data)
        rng = np.random.default_rng(seed)
        symbol = int(rng.integers(code.symbol_count))
        available = {i: blocks[i] for i in range(code.symbol_count) if i != symbol}
        value = code.decode_symbol(symbol, available)
        assert np.array_equal(value, blocks[symbol])


class TestRepairContracts:
    @settings(max_examples=60, deadline=None)
    @given(code_names, seeds)
    def test_repair_plan_restores_bits(self, name, seed):
        code = make_code(name)
        failed = random_tolerated_failure(code, seed)
        if not failed:
            return
        blocks = code.encode(make_data(code, seed))
        plan = code.plan_node_repair(failed)
        assert verify_repair_plan(code, blocks, plan)

    @settings(max_examples=60, deadline=None)
    @given(code_names, seeds)
    def test_repair_never_reads_failed_slots(self, name, seed):
        code = make_code(name)
        failed = random_tolerated_failure(code, seed)
        if not failed:
            return
        plan = code.plan_node_repair(failed)
        for transfer in plan.transfers:
            if transfer.kind.value != "decoded":
                assert transfer.source_slot not in failed

    @settings(max_examples=60, deadline=None)
    @given(code_names, seeds)
    def test_repair_restores_every_failed_slot(self, name, seed):
        code = make_code(name)
        failed = random_tolerated_failure(code, seed)
        if not failed:
            return
        blocks = code.encode(make_data(code, seed))
        plan = code.plan_node_repair(failed)
        recovered = execute_repair_plan(code, blocks, plan)
        for slot in failed:
            for symbol in code.layout.symbols_on_slot(slot):
                assert symbol in recovered

    @settings(max_examples=40, deadline=None)
    @given(code_names, seeds)
    def test_repair_bandwidth_at_most_generic(self, name, seed):
        """Structured plans never move more than the decode fallback."""
        code = make_code(name)
        failed = random_tolerated_failure(code, seed)
        if not failed:
            return
        structured = code.plan_node_repair(failed).network_blocks
        generic = Code.plan_node_repair(code, failed).network_blocks
        assert structured <= generic + 1   # +1: re-mirror forwarding slack


class TestRecoverabilityConsistency:
    @settings(max_examples=60, deadline=None)
    @given(code_names, seeds)
    def test_can_recover_matches_decodability(self, name, seed):
        code = make_code(name)
        rng = np.random.default_rng(seed)
        count = int(rng.integers(0, min(code.length, code.fault_tolerance + 2) + 1))
        failed = set(rng.choice(code.length, size=count, replace=False).tolist())
        blocks = code.encode(make_data(code, seed))
        available = {
            index: blocks[index]
            for index in code.layout.surviving_symbols(failed)
        }
        if code.can_recover(failed):
            code.decode_data(available)   # must not raise
        else:
            with pytest.raises(SingularMatrixError):
                code.decode_data(available)

    @settings(max_examples=30, deadline=None)
    @given(code_names)
    def test_tolerance_boundary(self, name):
        """Every pattern of size <= tolerance recovers; some pattern of
        size tolerance+1 does not."""
        code = make_code(name)
        tolerance = code.fault_tolerance
        if tolerance + 1 <= code.length:
            assert any(
                not code.can_recover(set(subset))
                for subset in itertools.combinations(range(code.length),
                                                     tolerance + 1)
            )


class TestDegradedReads:
    @settings(max_examples=60, deadline=None)
    @given(code_names, seeds)
    def test_degraded_read_returns_exact_bytes(self, name, seed):
        code = make_code(name)
        rng = np.random.default_rng(seed)
        symbol = code.layout.data_symbols()[
            int(rng.integers(code.k))
        ]
        failed = set(symbol.replicas)
        if not code.can_recover(failed):
            return
        blocks = code.encode(make_data(code, seed))
        plan = code.plan_degraded_read(symbol.index, failed)
        value = execute_read_plan(code, blocks, plan, failed)
        assert np.array_equal(value, blocks[symbol.index])

    @settings(max_examples=40, deadline=None)
    @given(code_names, seeds)
    def test_read_with_live_replica_costs_at_most_one(self, name, seed):
        code = make_code(name)
        rng = np.random.default_rng(seed)
        symbol = code.layout.symbols[int(rng.integers(code.symbol_count))]
        alive = symbol.replicas[0]
        failed = set(symbol.replicas[1:])
        plan = code.plan_degraded_read(symbol.index, failed)
        assert plan.network_blocks <= 1
        local = code.plan_degraded_read(symbol.index, failed, reader_slot=alive)
        assert local.network_blocks == 0


class TestMetricsInvariants:
    @settings(max_examples=30, deadline=None)
    @given(code_names)
    def test_overhead_is_blocks_over_k(self, name):
        code = make_code(name)
        assert code.storage_overhead == pytest.approx(code.total_blocks / code.k)

    @settings(max_examples=30, deadline=None)
    @given(code_names)
    def test_slot_map_partitions_replicas(self, name):
        layout = make_code(name).layout
        total = sum(len(layout.symbols_on_slot(s)) for s in range(layout.length))
        assert total == layout.total_blocks

    @settings(max_examples=30, deadline=None)
    @given(code_names)
    def test_generator_has_full_rank(self, name):
        from repro.gf import matrix_rank
        code = make_code(name)
        assert matrix_rank(code.layout.generator_matrix()) == code.k


class TestRegistryRoundTrip:
    """``make_code(code.name)`` must succeed for every constructible name.

    The generalized polygon-local family used to emit names
    (``pentagon-local(3g,2p)``) the registry could not parse, so codes
    could not travel by name — which the sharded enumeration cells, the
    sweep engine and the CLI all rely on."""

    @settings(max_examples=80, deadline=None)
    @given(st.integers(3, 9), st.integers(1, 4), st.integers(1, 3))
    def test_polygon_local_family(self, n, groups, parities):
        from repro.core import PolygonLocalCode
        code = PolygonLocalCode(n, groups=groups, global_parities=parities)
        rebuilt = make_code(code.name)
        assert isinstance(rebuilt, PolygonLocalCode)
        assert (rebuilt.n, rebuilt.groups, rebuilt.global_parities) \
            == (n, groups, parities)
        assert make_code(rebuilt.name).name == rebuilt.name

    @settings(max_examples=60, deadline=None)
    @given(code_names, seeds)
    def test_every_code_zoo_member(self, name, seed):
        del seed
        code = make_code(name)
        rebuilt = make_code(code.name)
        assert rebuilt.name == code.name
        assert rebuilt.length == code.length
        assert rebuilt.k == code.k

    @pytest.mark.parametrize("name", [
        "pentagon-local(3g,2p)", "heptagon-local(3g,2p)",
        "polygon-local-5(3g,2p)", "polygon-4-local", "polygon-9-local(4g,3p)",
        "heptagon-local", "pentagon-local",
    ])
    def test_generalized_spellings_parse(self, name):
        code = make_code(name)
        assert make_code(code.name).name == code.name
