"""Tests for the Dinic max-flow engine and matching counts."""

import numpy as np
import pytest

from repro.scheduling import FlowNetwork, Task, maximum_matching_count


class TestFlowNetwork:
    def test_single_edge(self):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 5)
        assert network.max_flow(0, 1) == 5

    def test_series_bottleneck(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 10)
        network.add_edge(1, 2, 3)
        assert network.max_flow(0, 2) == 3

    def test_parallel_paths(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 2)
        network.add_edge(0, 2, 2)
        network.add_edge(1, 3, 2)
        network.add_edge(2, 3, 2)
        assert network.max_flow(0, 3) == 4

    def test_classic_augmenting_path_case(self):
        # Diamond with a cross edge: requires flow cancellation.
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1)
        network.add_edge(0, 2, 1)
        network.add_edge(1, 2, 1)
        network.add_edge(1, 3, 1)
        network.add_edge(2, 3, 1)
        assert network.max_flow(0, 3) == 2

    def test_disconnected_is_zero(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 4)
        assert network.max_flow(0, 2) == 0

    def test_flow_on_edge(self):
        network = FlowNetwork(2)
        edge = network.add_edge(0, 1, 7)
        network.max_flow(0, 1)
        assert network.flow_on(edge) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowNetwork(0)
        network = FlowNetwork(2)
        with pytest.raises(ValueError):
            network.add_edge(0, 5, 1)
        with pytest.raises(ValueError):
            network.add_edge(0, 1, -1)
        with pytest.raises(ValueError):
            network.max_flow(1, 1)

    def test_against_networkx_on_random_graphs(self):
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(5)
        for trial in range(15):
            vertex_count = int(rng.integers(4, 12))
            graph = networkx.DiGraph()
            network = FlowNetwork(vertex_count)
            for _ in range(int(rng.integers(5, 30))):
                u, v = rng.integers(0, vertex_count, 2)
                if u == v:
                    continue
                capacity = int(rng.integers(1, 10))
                network.add_edge(int(u), int(v), capacity)
                if graph.has_edge(int(u), int(v)):
                    graph[int(u)][int(v)]["capacity"] += capacity
                else:
                    graph.add_edge(int(u), int(v), capacity=capacity)
            graph.add_nodes_from(range(vertex_count))
            expected = networkx.maximum_flow_value(graph, 0, vertex_count - 1) \
                if graph.has_node(0) and graph.has_node(vertex_count - 1) else 0
            assert network.max_flow(0, vertex_count - 1) == expected


class TestMatchingCount:
    def test_empty(self):
        assert maximum_matching_count([], 5, 2) == 0

    def test_perfect_matching(self):
        tasks = [Task(i, 0, (i,)) for i in range(4)]
        assert maximum_matching_count(tasks, 4, 1) == 4

    def test_capacity_limits_matching(self):
        # 5 tasks all pointing at one node with 2 slots.
        tasks = [Task(i, 0, (0,)) for i in range(5)]
        assert maximum_matching_count(tasks, 1, 2) == 2

    def test_two_replicas_avoid_contention(self):
        # Each task on nodes (i, i+1): chain admits a full matching.
        tasks = [Task(i, 0, (i, i + 1)) for i in range(4)]
        assert maximum_matching_count(tasks, 5, 1) == 4

    def test_pentagon_stripe_fits_two_slots(self):
        """An isolated pentagon stripe achieves full locality at mu=2.

        9 tasks on the K5 edge structure orient into in-degree <= 2.
        """
        from repro.core import pentagon
        code = pentagon()
        layout = code.layout
        tasks = [
            Task(symbol.index, 0, symbol.replicas)
            for symbol in layout.data_symbols()
        ]
        assert maximum_matching_count(tasks, 5, 2) == 9

    def test_heptagon_stripe_capped_at_mu2(self):
        """An isolated heptagon stripe cannot exceed 14 local tasks at mu=2."""
        from repro.core import heptagon
        code = heptagon()
        tasks = [
            Task(symbol.index, 0, symbol.replicas)
            for symbol in code.layout.data_symbols()
        ]
        assert maximum_matching_count(tasks, 7, 2) == 14
